#include "eval/ncut.h"

#include "linalg/power_iteration.h"
#include "util/logging.h"

namespace dgc {

Scalar NormalizedCut(const UGraph& g, const std::vector<bool>& in_subset) {
  DGC_CHECK_EQ(static_cast<Index>(in_subset.size()), g.NumVertices());
  const CsrMatrix& a = g.adjacency();
  Scalar cut = 0.0, vol_s = 0.0, vol_rest = 0.0;
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const bool us = in_subset[static_cast<size_t>(u)];
      const bool vs = in_subset[static_cast<size_t>(cols[i])];
      if (us) {
        vol_s += vals[i];
      } else {
        vol_rest += vals[i];
      }
      if (us && !vs) cut += vals[i];  // each undirected edge seen twice
    }
  }
  Scalar ncut = 0.0;
  if (vol_s > 0.0) ncut += cut / vol_s;
  if (vol_rest > 0.0) ncut += cut / vol_rest;
  return ncut;
}

Scalar NormalizedCut(const UGraph& g, const Clustering& clustering) {
  DGC_CHECK_EQ(clustering.NumVertices(), g.NumVertices());
  Clustering compact = clustering;
  const Index k = compact.Compact();
  if (k == 0) return 0.0;
  std::vector<Scalar> cut(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> vol(static_cast<size_t>(k), 0.0);
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const Index cu = compact.LabelOf(u);
    if (cu == Clustering::kUnassigned) continue;
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      vol[static_cast<size_t>(cu)] += vals[i];
      if (compact.LabelOf(cols[i]) != cu) {
        cut[static_cast<size_t>(cu)] += vals[i];
      }
    }
  }
  Scalar total = 0.0;
  for (Index c = 0; c < k; ++c) {
    if (vol[static_cast<size_t>(c)] > 0.0) {
      total += cut[static_cast<size_t>(c)] / vol[static_cast<size_t>(c)];
    }
  }
  return total;
}

Scalar DirectedNormalizedCut(const Digraph& g, const std::vector<Scalar>& pi,
                             const std::vector<bool>& in_subset) {
  DGC_CHECK_EQ(static_cast<Index>(in_subset.size()), g.NumVertices());
  DGC_CHECK_EQ(static_cast<Index>(pi.size()), g.NumVertices());
  const CsrMatrix p = RowStochastic(g.adjacency());
  Scalar out_flow = 0.0, in_flow = 0.0, pi_s = 0.0, pi_rest = 0.0;
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const bool us = in_subset[static_cast<size_t>(u)];
    if (us) {
      pi_s += pi[static_cast<size_t>(u)];
    } else {
      pi_rest += pi[static_cast<size_t>(u)];
    }
    auto cols = p.RowCols(u);
    auto vals = p.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const bool vs = in_subset[static_cast<size_t>(cols[i])];
      const Scalar flow = pi[static_cast<size_t>(u)] * vals[i];
      if (us && !vs) out_flow += flow;
      if (!us && vs) in_flow += flow;
    }
  }
  Scalar ncut = 0.0;
  if (pi_s > 0.0) ncut += out_flow / pi_s;
  if (pi_rest > 0.0) ncut += in_flow / pi_rest;
  return ncut;
}

Scalar DirectedNormalizedCut(const Digraph& g, const std::vector<Scalar>& pi,
                             const Clustering& clustering) {
  DGC_CHECK_EQ(clustering.NumVertices(), g.NumVertices());
  Clustering compact = clustering;
  const Index k = compact.Compact();
  if (k == 0) return 0.0;
  const CsrMatrix p = RowStochastic(g.adjacency());
  std::vector<Scalar> out_flow(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> mass(static_cast<size_t>(k), 0.0);
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const Index cu = compact.LabelOf(u);
    if (cu == Clustering::kUnassigned) continue;
    mass[static_cast<size_t>(cu)] += pi[static_cast<size_t>(u)];
    auto cols = p.RowCols(u);
    auto vals = p.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (compact.LabelOf(cols[i]) != cu) {
        out_flow[static_cast<size_t>(cu)] +=
            pi[static_cast<size_t>(u)] * vals[i];
      }
    }
  }
  Scalar total = 0.0;
  for (Index c = 0; c < k; ++c) {
    if (mass[static_cast<size_t>(c)] > 0.0) {
      total += out_flow[static_cast<size_t>(c)] / mass[static_cast<size_t>(c)];
    }
  }
  return total;
}

}  // namespace dgc
