// Modularity objectives: Newman's undirected modularity for symmetrized
// graphs and the Leicht-Newman directed variant for the original digraph —
// complementary quality measures to normalized cut for judging the
// clusterings produced by the framework.
#pragma once

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dgc {

/// \brief Newman modularity of a clustering on an undirected weighted
/// graph: Q = sum_c [ w_cc / W - (vol_c / 2W)^2 ], where W is the total
/// edge weight. Unassigned vertices contribute nothing. Q in [-1/2, 1].
Scalar Modularity(const UGraph& g, const Clustering& clustering);

/// \brief Leicht-Newman directed modularity:
/// Q = (1/m) sum_{ij in same cluster} [ A_ij - dout_i * din_j / m ].
Scalar DirectedModularity(const Digraph& g, const Clustering& clustering);

}  // namespace dgc
