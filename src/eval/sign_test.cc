#include "eval/sign_test.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dgc {

namespace {

constexpr double kLn10 = 2.302585092994046;

/// ln C(n, k) via lgamma.
double LogChoose(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

double Log10BinomialTailP(int64_t n, int64_t k) {
  if (k <= 0) return 0.0;  // P = 1
  if (k > n) return -std::numeric_limits<double>::infinity();
  // ln P = ln sum_{i=k..n} C(n,i) (1/2)^n, summed stably from the largest
  // term down (terms decrease once i passes n/2; for k > n/2 they decrease
  // monotonically).
  const double ln_half_n = -static_cast<double>(n) * std::log(2.0);
  // C(n, i) peaks at i = n/2; the largest tail term is at max(k, n/2).
  const double max_ln = LogChoose(n, std::max(k, n / 2));
  // log-sum-exp over the tail; truncate once terms are negligible.
  double sum = 0.0;
  for (int64_t i = k; i <= n; ++i) {
    const double term = std::exp(LogChoose(n, i) - max_ln);
    sum += term;
    if (i > n / 2 && term < 1e-18 * sum) break;
  }
  const double ln_p = max_ln + std::log(sum) + ln_half_n;
  return std::min(0.0, ln_p / kLn10);
}

Result<SignTestResult> PairedSignTest(const std::vector<bool>& correct_a,
                                      const std::vector<bool>& correct_b) {
  if (correct_a.size() != correct_b.size()) {
    return Status::InvalidArgument(
        "sign test requires equal-length correctness masks (" +
        std::to_string(correct_a.size()) + " vs " +
        std::to_string(correct_b.size()) + ")");
  }
  SignTestResult result;
  for (size_t i = 0; i < correct_a.size(); ++i) {
    if (correct_a[i] && !correct_b[i]) ++result.a_only;
    if (correct_b[i] && !correct_a[i]) ++result.b_only;
  }
  const int64_t n = result.a_only + result.b_only;
  if (n == 0 || result.a_only <= result.b_only) {
    result.log10_p_value = 0.0;  // no evidence A beats B
    return result;
  }
  result.log10_p_value = Log10BinomialTailP(n, result.a_only);
  return result;
}

}  // namespace dgc
