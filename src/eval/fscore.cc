#include "eval/fscore.h"

#include <unordered_map>

namespace dgc {

namespace {

/// vertex -> list of category ids (inverted ground-truth index).
Result<std::vector<std::vector<Index>>> InvertTruth(const GroundTruth& truth,
                                                    Index num_vertices) {
  std::vector<std::vector<Index>> memberships(
      static_cast<size_t>(num_vertices));
  for (size_t c = 0; c < truth.categories.size(); ++c) {
    for (Index v : truth.categories[c]) {
      if (v < 0 || v >= num_vertices) {
        return Status::InvalidArgument(
            "ground-truth vertex " + std::to_string(v) +
            " outside clustering of " + std::to_string(num_vertices) +
            " vertices");
      }
      memberships[static_cast<size_t>(v)].push_back(static_cast<Index>(c));
    }
  }
  return memberships;
}

}  // namespace

Result<FScoreResult> EvaluateFScore(const Clustering& clustering,
                                    const GroundTruth& truth) {
  const Index n = clustering.NumVertices();
  DGC_ASSIGN_OR_RETURN(std::vector<std::vector<Index>> memberships,
                       InvertTruth(truth, n));
  Clustering compact = clustering;
  compact.Compact();
  const std::vector<std::vector<Index>> clusters = compact.ToClusters();

  FScoreResult result;
  result.per_cluster.reserve(clusters.size());
  double weighted_f = 0.0, weighted_p = 0.0, weighted_r = 0.0;
  Offset total_size = 0;
  std::unordered_map<Index, Index> overlap;  // category -> |C_i ∩ G_j|
  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    const std::vector<Index>& members = clusters[ci];
    if (members.empty()) continue;
    overlap.clear();
    for (Index v : members) {
      for (Index cat : memberships[static_cast<size_t>(v)]) ++overlap[cat];
    }
    ClusterMatch match;
    match.cluster = static_cast<Index>(ci);
    match.size = static_cast<Index>(members.size());
    for (const auto& [cat, common] : overlap) {
      const double p = static_cast<double>(common) /
                       static_cast<double>(members.size());
      const double r =
          static_cast<double>(common) /
          static_cast<double>(
              truth.categories[static_cast<size_t>(cat)].size());
      const double f = (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
      if (f > match.f) {
        match.f = f;
        match.precision = p;
        match.recall = r;
        match.best_category = cat;
      }
    }
    weighted_f += match.f * match.size;
    weighted_p += match.precision * match.size;
    weighted_r += match.recall * match.size;
    total_size += match.size;
    result.per_cluster.push_back(match);
  }
  if (total_size > 0) {
    result.avg_f = weighted_f / static_cast<double>(total_size);
    result.avg_precision = weighted_p / static_cast<double>(total_size);
    result.avg_recall = weighted_r / static_cast<double>(total_size);
  }
  return result;
}

Result<std::vector<bool>> CorrectlyClusteredMask(const Clustering& clustering,
                                                 const GroundTruth& truth) {
  const Index n = clustering.NumVertices();
  DGC_ASSIGN_OR_RETURN(FScoreResult eval, EvaluateFScore(clustering, truth));
  DGC_ASSIGN_OR_RETURN(std::vector<std::vector<Index>> memberships,
                       InvertTruth(truth, n));
  // Map compacted cluster label -> matched category.
  Clustering compact = clustering;
  compact.Compact();
  std::vector<Index> matched(eval.per_cluster.size() + 1, -1);
  Index max_label = -1;
  for (const ClusterMatch& m : eval.per_cluster) {
    max_label = std::max(max_label, m.cluster);
  }
  matched.assign(static_cast<size_t>(max_label) + 1, -1);
  for (const ClusterMatch& m : eval.per_cluster) {
    matched[static_cast<size_t>(m.cluster)] = m.best_category;
  }
  std::vector<bool> correct(static_cast<size_t>(n), false);
  for (Index v = 0; v < n; ++v) {
    const Index label = compact.LabelOf(v);
    if (label == Clustering::kUnassigned) continue;
    const Index cat = matched[static_cast<size_t>(label)];
    if (cat < 0) continue;
    for (Index c : memberships[static_cast<size_t>(v)]) {
      if (c == cat) {
        correct[static_cast<size_t>(v)] = true;
        break;
      }
    }
  }
  return correct;
}

}  // namespace dgc
