#include "eval/modularity.h"

#include <vector>

#include "util/logging.h"

namespace dgc {

Scalar Modularity(const UGraph& g, const Clustering& clustering) {
  DGC_CHECK_EQ(clustering.NumVertices(), g.NumVertices());
  Clustering compact = clustering;
  const Index k = compact.Compact();
  if (k == 0) return 0.0;
  const Scalar total = g.Volume();  // = 2W for undirected graphs
  if (total <= 0.0) return 0.0;
  std::vector<Scalar> intra(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> volume(static_cast<size_t>(k), 0.0);
  const CsrMatrix& adj = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const Index cu = compact.LabelOf(u);
    if (cu == Clustering::kUnassigned) continue;
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      volume[static_cast<size_t>(cu)] += vals[i];
      if (compact.LabelOf(cols[i]) == cu) {
        intra[static_cast<size_t>(cu)] += vals[i];
      }
    }
  }
  Scalar q = 0.0;
  for (Index c = 0; c < k; ++c) {
    const Scalar e = intra[static_cast<size_t>(c)] / total;
    const Scalar a = volume[static_cast<size_t>(c)] / total;
    q += e - a * a;
  }
  return q;
}

Scalar DirectedModularity(const Digraph& g, const Clustering& clustering) {
  DGC_CHECK_EQ(clustering.NumVertices(), g.NumVertices());
  Clustering compact = clustering;
  const Index k = compact.Compact();
  if (k == 0) return 0.0;
  const CsrMatrix& a = g.adjacency();
  Scalar m = 0.0;
  for (Scalar v : a.values()) m += v;
  if (m <= 0.0) return 0.0;
  // Per-cluster intra weight and the product of out/in volumes.
  std::vector<Scalar> intra(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> out_vol(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> in_vol(static_cast<size_t>(k), 0.0);
  const std::vector<Scalar> out_w = a.RowSums();
  const std::vector<Scalar> in_w = a.ColSums();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const Index cu = compact.LabelOf(u);
    if (cu == Clustering::kUnassigned) continue;
    out_vol[static_cast<size_t>(cu)] += out_w[static_cast<size_t>(u)];
    in_vol[static_cast<size_t>(cu)] += in_w[static_cast<size_t>(u)];
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (compact.LabelOf(cols[i]) == cu) {
        intra[static_cast<size_t>(cu)] += vals[i];
      }
    }
  }
  Scalar q = 0.0;
  for (Index c = 0; c < k; ++c) {
    q += intra[static_cast<size_t>(c)] / m -
         out_vol[static_cast<size_t>(c)] * in_vol[static_cast<size_t>(c)] /
             (m * m);
  }
  return q;
}

}  // namespace dgc
