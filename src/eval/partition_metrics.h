// Partition-comparison metrics for disjoint ground truth: normalized
// mutual information and the adjusted Rand index. Complements the paper's
// best-match F-measure (fscore.h) for the controlled LFR experiments,
// where communities partition the vertex set exactly.
#pragma once

#include "graph/clustering.h"
#include "util/result.h"

namespace dgc {

struct PartitionComparison {
  /// Normalized mutual information, NMI = 2 I(A;B) / (H(A) + H(B)), in
  /// [0, 1]; 1 iff the partitions are identical up to relabeling.
  double nmi = 0.0;
  /// Adjusted Rand index in [-1, 1]; 0 in expectation for random labels.
  double ari = 0.0;
  /// Vertices counted (present and labeled in both partitions).
  int64_t support = 0;
};

/// \brief Compares two hard clusterings over the same vertex set. Vertices
/// unassigned in either clustering are excluded. Returns InvalidArgument
/// on size mismatch, and NMI/ARI of 0 when fewer than 2 vertices remain.
Result<PartitionComparison> ComparePartitions(const Clustering& a,
                                              const Clustering& b);

/// Convenience: converts disjoint ground-truth categories to a Clustering
/// (vertices in no category stay unassigned; membership in multiple
/// categories is InvalidArgument — use EvaluateFScore for overlapping
/// truth).
Result<Clustering> TruthToClustering(const GroundTruth& truth,
                                     Index num_vertices);

}  // namespace dgc
