#include "eval/record.h"

#include "eval/modularity.h"
#include "eval/ncut.h"
#include "obs/metrics.h"

namespace dgc {

void RecordClusteringMetrics(const UGraph& g, const Clustering& clustering,
                             MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetGauge("eval.modularity", Modularity(g, clustering));
  registry->SetGauge("eval.avg_ncut", NormalizedCut(g, clustering));
  registry->SetGauge("eval.num_clusters",
                     static_cast<double>(clustering.NumClusters()));
  // Sizes span orders of magnitude; 16 exponential buckets cover
  // [1, 2^16) with one overflow bucket beyond.
  Histogram sizes = Histogram::Exponential(1.0, 2.0, 16);
  for (const Index size : clustering.ClusterSizes()) {
    sizes.Observe(static_cast<double>(size));
  }
  registry->MergeHistogram("eval.cluster_size", sizes);
}

}  // namespace dgc
