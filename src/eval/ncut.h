// Normalized-cut objectives: the undirected k-way Ncut (Eq. 1), the
// directed random-walk Ncut of Zhou/Huang (Eq. 3), and per-subset variants
// used to verify Gleich's equivalence (Section 3.2).
#pragma once

#include <vector>

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

/// \brief Ncut(S) of a single vertex subset in an undirected graph (Eq. 1):
/// cut(S, S̄)/vol(S) + cut(S, S̄)/vol(S̄). `in_subset[v]` marks membership.
/// Returns 0 when either side has zero volume.
Scalar NormalizedCut(const UGraph& g, const std::vector<bool>& in_subset);

/// \brief k-way undirected Ncut of a clustering: sum over clusters S of
/// cut(S, S̄)/vol(S). Unassigned vertices count as their own side of every
/// cut but contribute no cluster term.
Scalar NormalizedCut(const UGraph& g, const Clustering& clustering);

/// \brief Directed Ncut of a subset (Eq. 3) under the random walk with
/// stationary distribution `pi`:
///   sum_{i in S, j notin S} pi(i)P(i,j) / pi(S)
/// + sum_{j notin S, i in S} pi(j)P(j,i) / pi(S̄).
Scalar DirectedNormalizedCut(const Digraph& g, const std::vector<Scalar>& pi,
                             const std::vector<bool>& in_subset);

/// k-way directed Ncut: sum over clusters of the outgoing term
/// sum_{i in S, j notin S} pi(i)P(i,j) / pi(S).
Scalar DirectedNormalizedCut(const Digraph& g, const std::vector<Scalar>& pi,
                             const Clustering& clustering);

}  // namespace dgc
