// Semi-supervised learning on directed graphs (Zhou, Scholkopf & Hofmann,
// NIPS 2005 — the paper's reference [25], which Section 3.4 credits with
// the same degree-discounting intuition: "regularize functions on directed
// graphs so as to force the function to change slowly on vertices with
// high normalized in-link or out-link similarity").
//
// Given a handful of labeled vertices, propagates labels with the directed
// Laplacian kernel S (Eq. 5's symmetric part):
//   F <- mu * S F + (1 - mu) * Y
// iterated to convergence; vertex v takes the class argmax_c F(v, c).
#pragma once

#include <vector>

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "linalg/power_iteration.h"
#include "util/result.h"

namespace dgc {

struct SemiSupervisedOptions {
  /// Propagation weight mu in (0, 1); larger = smoother, slower mixing.
  Scalar mu = 0.9;
  Scalar tolerance = 1e-7;
  int max_iterations = 200;
  PageRankOptions pagerank;
};

struct SemiSupervisedResult {
  /// Predicted class per vertex (seeds keep their class; vertices with no
  /// reachable evidence stay kUnassigned).
  Clustering labels;
  int iterations = 0;
  bool converged = false;
};

/// \brief Propagates `seeds` (vertex -> class, classes in [0, num_classes))
/// over the digraph. Returns InvalidArgument for empty/invalid seeds.
Result<SemiSupervisedResult> PropagateLabelsDirected(
    const Digraph& g, const std::vector<std::pair<Index, Index>>& seeds,
    Index num_classes, const SemiSupervisedOptions& options = {});

}  // namespace dgc
