// Graclus-like multilevel normalized-cut clusterer (Dhillon, Guan, Kulis
// 2007: "Weighted Graph Cuts without Eigenvectors"). Same multilevel
// skeleton as the Metis-like partitioner, but the per-level refinement is
// weighted-kernel-k-means local search that directly minimizes the k-way
// normalized cut instead of the edge cut.
#pragma once

#include <cstdint>

#include "cluster/coarsen.h"
#include "graph/clustering.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

struct GraclusOptions {
  Index k = 16;
  /// Normalized-cut local-search passes per level.
  int refinement_passes = 8;
  CoarsenOptions coarsen;
  uint64_t seed = 19;
};

/// \brief Clusters g into options.k groups minimizing the k-way normalized
/// cut. Every vertex is assigned. Returns InvalidArgument if k < 1 or
/// k > |V|.
Result<Clustering> GraclusCluster(const UGraph& g,
                                  const GraclusOptions& options = {});

/// k-way Ncut objective sum_c cut(c)/deg(c) over a labeled level graph
/// (diagonal entries count toward degree but never toward the cut).
Scalar LevelNormalizedCut(const CsrMatrix& adj,
                          const std::vector<Index>& labels, Index k);

}  // namespace dgc
