#include "cluster/local.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace dgc {

Result<std::vector<std::pair<Index, Scalar>>> ApproximatePersonalizedPageRank(
    const UGraph& g, Index seed, const LocalClusterOptions& options) {
  if (seed < 0 || seed >= g.NumVertices()) {
    return Status::InvalidArgument("seed out of range");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const std::vector<Scalar> degree = g.WeightedDegrees();
  if (degree[static_cast<size_t>(seed)] <= 0.0) {
    return Status::NotFound("seed vertex is isolated");
  }
  // Sparse p (approximation) and r (residual) maps; push until every
  // residual is below epsilon * degree.
  std::unordered_map<Index, Scalar> p, r;
  r[seed] = 1.0;
  std::deque<Index> queue = {seed};
  std::unordered_set<Index> queued = {seed};
  const Scalar alpha = options.alpha;
  while (!queue.empty()) {
    const Index u = queue.front();
    queue.pop_front();
    queued.erase(u);
    const Scalar du = degree[static_cast<size_t>(u)];
    Scalar& ru = r[u];
    if (du <= 0.0 || ru < options.epsilon * du) continue;
    // Push: move alpha fraction to p, spread the rest over neighbors.
    const Scalar mass = ru;
    p[u] += alpha * mass;
    ru = 0.0;
    const Scalar spread = (1.0 - alpha) * mass;
    auto cols = g.Neighbors(u);
    auto vals = g.NeighborWeights(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const Index v = cols[i];
      Scalar& rv = r[v];
      rv += spread * vals[i] / du;
      const Scalar dv = degree[static_cast<size_t>(v)];
      if (dv > 0.0 && rv >= options.epsilon * dv && !queued.count(v)) {
        queue.push_back(v);
        queued.insert(v);
      }
    }
    // u itself may exceed the threshold again (self-mass via neighbors).
    if (r[u] >= options.epsilon * du && !queued.count(u)) {
      queue.push_back(u);
      queued.insert(u);
    }
  }
  std::vector<std::pair<Index, Scalar>> result(p.begin(), p.end());
  std::sort(result.begin(), result.end());
  return result;
}

Scalar Conductance(const UGraph& g, const std::vector<Index>& subset) {
  std::unordered_set<Index> in(subset.begin(), subset.end());
  Scalar cut = 0.0, vol_s = 0.0;
  Scalar total = 0.0;
  const CsrMatrix& adj = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    const bool us = in.count(u) > 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      total += vals[i];
      if (!us) continue;
      vol_s += vals[i];
      if (!in.count(cols[i])) cut += vals[i];
    }
  }
  const Scalar denom = std::min(vol_s, total - vol_s);
  return denom > 0.0 ? cut / denom : 1.0;
}

Result<LocalClusterResult> LocalCluster(const UGraph& g, Index seed,
                                        const LocalClusterOptions& options) {
  DGC_ASSIGN_OR_RETURN(auto ppr,
                       ApproximatePersonalizedPageRank(g, seed, options));
  const std::vector<Scalar> degree = g.WeightedDegrees();
  // Sweep order: decreasing p(v)/d(v).
  std::sort(ppr.begin(), ppr.end(), [&degree](const auto& a, const auto& b) {
    return a.second / degree[static_cast<size_t>(a.first)] >
           b.second / degree[static_cast<size_t>(b.first)];
  });
  const size_t limit =
      options.max_cluster_size > 0
          ? std::min(ppr.size(), static_cast<size_t>(options.max_cluster_size))
          : ppr.size();

  // Incremental sweep: track cut and volume as vertices join the prefix.
  Scalar total_volume = g.Volume();
  std::unordered_set<Index> in;
  Scalar cut = 0.0, vol = 0.0;
  Scalar best_conductance = 2.0;
  size_t best_prefix = 0;
  const CsrMatrix& adj = g.adjacency();
  for (size_t i = 0; i < limit; ++i) {
    const Index u = ppr[i].first;
    in.insert(u);
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    Scalar to_inside = 0.0, du = 0.0;
    for (size_t e = 0; e < cols.size(); ++e) {
      du += vals[e];
      if (in.count(cols[e])) to_inside += vals[e];
    }
    vol += du;
    cut += du - 2.0 * to_inside;
    const Scalar denom = std::min(vol, total_volume - vol);
    if (denom <= 0.0) break;
    const Scalar conductance = cut / denom;
    if (conductance < best_conductance) {
      best_conductance = conductance;
      best_prefix = i + 1;
    }
  }
  LocalClusterResult result;
  result.support = static_cast<Index>(ppr.size());
  result.conductance = best_conductance;
  result.cluster.reserve(best_prefix);
  for (size_t i = 0; i < best_prefix; ++i) {
    result.cluster.push_back(ppr[i].first);
  }
  std::sort(result.cluster.begin(), result.cluster.end());
  return result;
}

}  // namespace dgc
