// Local partitioning via approximate personalized PageRank (Andersen,
// Chung, Lang 2007 — the paper's reference [1], the one prior directed-
// clustering approach that scales). Finds a low-conductance cluster around
// a seed vertex without touching the whole graph: APPR push followed by a
// sweep cut. Combined with a symmetrized graph this gives local versions
// of the paper's pipeline.
#pragma once

#include <vector>

#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

struct LocalClusterOptions {
  /// Teleport probability of the personalized walk.
  Scalar alpha = 0.15;
  /// Push tolerance: residual per unit degree kept below this. Smaller =
  /// larger explored region.
  Scalar epsilon = 1e-5;
  /// Cap on the sweep prefix length (0 = no cap).
  Index max_cluster_size = 0;
};

struct LocalClusterResult {
  /// Vertices of the best sweep cut, ordered by decreasing ppr/degree.
  std::vector<Index> cluster;
  /// Conductance (undirected Ncut numerator/denominator form) of the cut.
  Scalar conductance = 0.0;
  /// Number of vertices touched by the push (work bound).
  Index support = 0;
};

/// \brief Approximate personalized PageRank vector around `seed` by the
/// Andersen-Chung-Lang push algorithm. Returns (vertex, value) pairs for
/// the support only.
Result<std::vector<std::pair<Index, Scalar>>> ApproximatePersonalizedPageRank(
    const UGraph& g, Index seed, const LocalClusterOptions& options = {});

/// \brief Local cluster around `seed`: APPR + sweep over prefixes of the
/// degree-normalized ranking, returning the prefix with minimum
/// conductance. Returns InvalidArgument for a bad seed, NotFound when the
/// seed is isolated.
Result<LocalClusterResult> LocalCluster(const UGraph& g, Index seed,
                                        const LocalClusterOptions& options = {});

/// Conductance of a vertex subset: cut(S, S̄) / min(vol(S), vol(S̄)).
Scalar Conductance(const UGraph& g, const std::vector<Index>& subset);

}  // namespace dgc
