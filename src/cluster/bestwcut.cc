#include "cluster/bestwcut.h"

#include <array>
#include <limits>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"

namespace dgc {

namespace {

/// Builds the candidate transition-weight vector t'.
Result<std::vector<Scalar>> BuildWeights(const Digraph& g, WCutWeighting w,
                                         const PageRankOptions& pagerank) {
  const size_t n = static_cast<size_t>(g.NumVertices());
  switch (w) {
    case WCutWeighting::kUniform:
      return std::vector<Scalar>(n, 1.0);
    case WCutWeighting::kInDegree: {
      std::vector<Offset> indeg = g.InDegrees();
      std::vector<Scalar> t(n);
      for (size_t i = 0; i < n; ++i) {
        t[i] = static_cast<Scalar>(indeg[i]) + 1.0;  // +1 keeps weights > 0
      }
      return t;
    }
    case WCutWeighting::kPageRank: {
      DGC_ASSIGN_OR_RETURN(PageRankResult pr,
                           PageRank(g.adjacency(), pagerank));
      // Scale to mean 1 so objectives are comparable across weightings.
      Scalar mean = 1.0 / static_cast<Scalar>(n);
      for (Scalar& v : pr.pi) v /= mean;
      return pr.pi;
    }
  }
  return Status::InvalidArgument("unknown WCut weighting");
}

/// H = Diag(t') A + Aᵀ Diag(t'), the symmetric cut matrix of the weighting.
Result<CsrMatrix> BuildCutMatrix(const Digraph& g,
                                 const std::vector<Scalar>& t_prime) {
  CsrMatrix h = g.adjacency();
  h.ScaleRows(t_prime);
  DGC_ASSIGN_OR_RETURN(CsrMatrix sym, CsrMatrix::Add(h, h.Transpose()));
  return sym.Pruned(0.0, /*drop_diagonal=*/true);
}

}  // namespace

std::string_view WCutWeightingName(WCutWeighting w) {
  switch (w) {
    case WCutWeighting::kUniform:
      return "uniform";
    case WCutWeighting::kInDegree:
      return "in-degree";
    case WCutWeighting::kPageRank:
      return "pagerank";
  }
  return "?";
}

Result<double> WCutObjective(const Digraph& g, const Clustering& clustering,
                             WCutWeighting w,
                             const PageRankOptions& pagerank) {
  if (clustering.NumVertices() != g.NumVertices()) {
    return Status::InvalidArgument("clustering size != graph size");
  }
  DGC_ASSIGN_OR_RETURN(std::vector<Scalar> t_prime,
                       BuildWeights(g, w, pagerank));
  DGC_ASSIGN_OR_RETURN(CsrMatrix h, BuildCutMatrix(g, t_prime));
  Clustering compact = clustering;
  const Index k = compact.Compact();
  if (k == 0) return 0.0;
  const std::vector<Scalar> volume = h.RowSums();
  std::vector<Scalar> cut(static_cast<size_t>(k), 0.0);
  std::vector<Scalar> vol(static_cast<size_t>(k), 0.0);
  for (Index u = 0; u < g.NumVertices(); ++u) {
    const Index cu = compact.LabelOf(u);
    if (cu == Clustering::kUnassigned) continue;
    vol[static_cast<size_t>(cu)] += volume[static_cast<size_t>(u)];
    auto cols = h.RowCols(u);
    auto vals = h.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (compact.LabelOf(cols[i]) != cu) {
        cut[static_cast<size_t>(cu)] += vals[i];
      }
    }
  }
  double total = 0.0;
  for (Index c = 0; c < k; ++c) {
    if (vol[static_cast<size_t>(c)] > 0.0) {
      total += cut[static_cast<size_t>(c)] / vol[static_cast<size_t>(c)];
    }
  }
  return total;
}

Result<BestWCutResult> BestWCut(const Digraph& g,
                                const BestWCutOptions& options) {
  if (options.k < 1 || options.k > g.NumVertices()) {
    return Status::InvalidArgument("k out of range");
  }
  constexpr std::array<WCutWeighting, 3> kCandidates = {
      WCutWeighting::kUniform,
      WCutWeighting::kInDegree,
      WCutWeighting::kPageRank,
  };
  BestWCutResult best;
  best.wcut = std::numeric_limits<double>::max();
  for (WCutWeighting w : kCandidates) {
    DGC_ASSIGN_OR_RETURN(std::vector<Scalar> t_prime,
                         BuildWeights(g, w, options.pagerank));
    DGC_ASSIGN_OR_RETURN(CsrMatrix h, BuildCutMatrix(g, t_prime));
    SpectralOptions spectral = options.spectral;
    spectral.k = options.k;
    spectral.seed = options.seed;
    DGC_ASSIGN_OR_RETURN(Clustering clustering,
                         SpectralClusterSymmetric(h, spectral));
    DGC_ASSIGN_OR_RETURN(double objective,
                         WCutObjective(g, clustering, w, options.pagerank));
    if (objective < best.wcut) {
      best.wcut = objective;
      best.chosen = w;
      best.clustering = std::move(clustering);
    }
  }
  return best;
}

}  // namespace dgc
