#include "cluster/partition_metis.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "cluster/initial_partition.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dgc {

namespace {

/// One greedy boundary pass: move vertices to the adjacent part with the
/// largest positive cut gain, honoring the balance cap and never emptying a
/// part. Returns the number of moves.
int64_t RefinePass(const GraphLevel& level, Index k, double cap,
                   std::vector<Index>& labels,
                   std::vector<Scalar>& part_weight,
                   std::vector<Index>& part_size) {
  const Index n = level.adj.rows();
  int64_t moves = 0;
  std::unordered_map<Index, Scalar> link;
  for (Index u = 0; u < n; ++u) {
    const Index a = labels[static_cast<size_t>(u)];
    if (part_size[static_cast<size_t>(a)] <= 1) continue;
    link.clear();
    auto cols = level.adj.RowCols(u);
    auto vals = level.adj.RowValues(u);
    bool boundary = false;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) continue;  // diagonal (internal weight) never cut
      const Index c = labels[static_cast<size_t>(cols[i])];
      link[c] += vals[i];
      if (c != a) boundary = true;
    }
    if (!boundary) continue;
    const Scalar internal = link.count(a) ? link[a] : 0.0;
    Index best = a;
    Scalar best_gain = 0.0;
    for (const auto& [c, w] : link) {
      if (c == a) continue;
      const Scalar gain = w - internal;
      if (gain <= best_gain) continue;
      if (part_weight[static_cast<size_t>(c)] +
              level.node_weight[static_cast<size_t>(u)] >
          cap) {
        continue;
      }
      best_gain = gain;
      best = c;
    }
    if (best != a) {
      labels[static_cast<size_t>(u)] = best;
      part_weight[static_cast<size_t>(a)] -=
          level.node_weight[static_cast<size_t>(u)];
      part_weight[static_cast<size_t>(best)] +=
          level.node_weight[static_cast<size_t>(u)];
      --part_size[static_cast<size_t>(a)];
      ++part_size[static_cast<size_t>(best)];
      ++moves;
    }
  }
  (void)k;
  return moves;
}

/// Computes the cut gain of moving u from its part to `to` (link weights to
/// `to` minus link weights to its own part).
Scalar MoveGain(const GraphLevel& level, const std::vector<Index>& labels,
                Index u, Index to) {
  const Index from = labels[static_cast<size_t>(u)];
  Scalar gain = 0.0;
  auto cols = level.adj.RowCols(u);
  auto vals = level.adj.RowValues(u);
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == u) continue;
    const Index c = labels[static_cast<size_t>(cols[i])];
    if (c == to) gain += vals[i];
    if (c == from) gain -= vals[i];
  }
  return gain;
}

/// Kernighan-Lin style swap pass: exchanges endpoint pairs of cut edges
/// when the combined gain is positive. Escapes the local optima that
/// blocked single moves cannot leave under a tight balance cap (the swap
/// keeps part sizes unchanged up to the weight difference of the pair).
int64_t SwapPass(const GraphLevel& level, double cap,
                 std::vector<Index>& labels,
                 std::vector<Scalar>& part_weight) {
  const Index n = level.adj.rows();
  int64_t swaps = 0;
  for (Index u = 0; u < n; ++u) {
    const Index a = labels[static_cast<size_t>(u)];
    auto cols = level.adj.RowCols(u);
    auto vals = level.adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const Index v = cols[i];
      if (v <= u) continue;
      const Index b = labels[static_cast<size_t>(v)];
      if (a == b) continue;
      const Scalar gain = MoveGain(level, labels, u, b) +
                          MoveGain(level, labels, v, a) - 2.0 * vals[i];
      if (gain <= 1e-12) continue;
      const Scalar wu = level.node_weight[static_cast<size_t>(u)];
      const Scalar wv = level.node_weight[static_cast<size_t>(v)];
      if (part_weight[static_cast<size_t>(b)] + wu - wv > cap ||
          part_weight[static_cast<size_t>(a)] + wv - wu > cap) {
        continue;
      }
      labels[static_cast<size_t>(u)] = b;
      labels[static_cast<size_t>(v)] = a;
      part_weight[static_cast<size_t>(a)] += wv - wu;
      part_weight[static_cast<size_t>(b)] += wu - wv;
      ++swaps;
      break;  // u moved; its cached neighbor labels are stale
    }
  }
  return swaps;
}

}  // namespace

Scalar EdgeCut(const CsrMatrix& adj, const std::vector<Index>& labels) {
  Scalar cut = 0.0;
  for (Index u = 0; u < adj.rows(); ++u) {
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) continue;
      if (labels[static_cast<size_t>(u)] !=
          labels[static_cast<size_t>(cols[i])]) {
        cut += vals[i];
      }
    }
  }
  return cut / 2.0;  // each cut edge visited from both endpoints
}

Result<Clustering> MetisPartition(const UGraph& g,
                                  const MetisOptions& options) {
  const Index n = g.NumVertices();
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > n) {
    return Status::InvalidArgument("k (" + std::to_string(options.k) +
                                   ") exceeds vertex count (" +
                                   std::to_string(n) + ")");
  }
  if (options.k == 1) {
    return Clustering(std::vector<Index>(static_cast<size_t>(n), 0));
  }

  // Coarsen, but never below ~4 vertices per part.
  CoarsenOptions coarsen = options.coarsen;
  coarsen.target_vertices =
      std::max(coarsen.target_vertices, options.k * 4);
  coarsen.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(Hierarchy hierarchy, BuildHierarchy(g, coarsen));

  const double total_weight = static_cast<double>(n);
  const double cap = (1.0 + options.imbalance) * total_weight /
                     static_cast<double>(options.k);

  // Refines `labels` on one level: greedy boundary moves, with pairwise
  // swaps to escape balance-blocked local optima.
  auto refine_level = [&](const GraphLevel& current,
                          std::vector<Index>& labels) {
    std::vector<Scalar> part_weight(static_cast<size_t>(options.k), 0.0);
    std::vector<Index> part_size(static_cast<size_t>(options.k), 0);
    for (Index v = 0; v < current.adj.rows(); ++v) {
      part_weight[static_cast<size_t>(labels[static_cast<size_t>(v)])] +=
          current.node_weight[static_cast<size_t>(v)];
      ++part_size[static_cast<size_t>(labels[static_cast<size_t>(v)])];
    }
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      const int64_t moves =
          RefinePass(current, options.k, cap, labels, part_weight, part_size);
      if (moves > 0) continue;
      if (SwapPass(current, cap, labels, part_weight) == 0) break;
    }
  };

  // Initial partitioning at the coarsest level: a few random restarts,
  // best refined cut wins (greedy growing is seed-sensitive).
  const GraphLevel& coarsest = hierarchy.coarsest();
  constexpr int kInitialRestarts = 4;
  std::vector<Index> labels;
  Scalar best_cut = std::numeric_limits<Scalar>::max();
  for (int restart = 0; restart < kInitialRestarts; ++restart) {
    Rng rng(options.seed + static_cast<uint64_t>(restart) * 7919);
    std::vector<Index> candidate =
        GreedyGrowPartition(coarsest, options.k, cap, rng);
    refine_level(coarsest, candidate);
    const Scalar cut = EdgeCut(coarsest.adj, candidate);
    if (cut < best_cut) {
      best_cut = cut;
      labels = std::move(candidate);
    }
  }

  // Uncoarsen with refinement at every finer level.
  for (int level = hierarchy.NumLevels() - 2; level >= 0; --level) {
    const GraphLevel& current = hierarchy.levels[static_cast<size_t>(level)];
    labels = ProjectLabels(labels, current.to_coarser);
    refine_level(current, labels);
  }
  return Clustering(std::move(labels));
}

}  // namespace dgc
