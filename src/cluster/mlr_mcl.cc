#include "cluster/mlr_mcl.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dgc {

Result<CsrMatrix> ProjectFlow(const CsrMatrix& coarse_flow,
                              const std::vector<Index>& to_coarser,
                              Index num_fine, int num_threads) {
  if (static_cast<Index>(to_coarser.size()) != num_fine) {
    return Status::InvalidArgument("to_coarser size != num_fine");
  }
  const Index num_coarse = coarse_flow.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(num_fine, 1)));
  // Children lists of each supernode (matching => 1 or 2 children).
  std::vector<std::vector<Index>> children(
      static_cast<size_t>(num_coarse));
  for (Index i = 0; i < num_fine; ++i) {
    const Index p = to_coarser[static_cast<size_t>(i)];
    if (p < 0 || p >= num_coarse) {
      return Status::OutOfRange("to_coarser entry out of range");
    }
    children[static_cast<size_t>(p)].push_back(i);
  }
  // Pass 1: per-fine-row sizes (sum of child counts of the parent's
  // columns), prefix-summed serially into deterministic row pointers.
  std::vector<Offset> row_ptr(static_cast<size_t>(num_fine) + 1, 0);
  ParallelFor(0, num_fine, threads, [&](int64_t i) {
    const Index p = to_coarser[static_cast<size_t>(i)];
    Offset count = 0;
    for (Index c : coarse_flow.RowCols(p)) {
      count += static_cast<Offset>(children[static_cast<size_t>(c)].size());
    }
    row_ptr[static_cast<size_t>(i) + 1] = count;
  });
  for (Index i = 0; i < num_fine; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] += row_ptr[static_cast<size_t>(i)];
  }
  // Pass 2: fill and sort each fine row independently at its final offset.
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  std::vector<std::vector<std::pair<Index, Scalar>>> row_scratch(
      static_cast<size_t>(threads));
  ParallelForWorkers(
      0, num_fine, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        auto& row = row_scratch[static_cast<size_t>(worker)];
        for (int64_t i = lo; i < hi; ++i) {
          const Index p = to_coarser[static_cast<size_t>(i)];
          auto cols = coarse_flow.RowCols(p);
          auto vals = coarse_flow.RowValues(p);
          row.clear();
          for (size_t e = 0; e < cols.size(); ++e) {
            const auto& kids = children[static_cast<size_t>(cols[e])];
            if (kids.empty()) continue;
            const Scalar share = vals[e] / static_cast<Scalar>(kids.size());
            for (Index kid : kids) row.emplace_back(kid, share);
          }
          std::sort(row.begin(), row.end());
          size_t out = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
          for (const auto& [c, v] : row) {
            col_idx[out] = c;
            values[out++] = v;
          }
        }
      });
  // Each fine row is sorted before the copy-out and every column is a child
  // index < num_fine, so structure holds by construction; checked builds
  // re-verify at the boundary.
  CsrMatrix projected = CsrMatrix::FromPartsUnchecked(
      num_fine, num_fine, std::move(row_ptr), std::move(col_idx),
      std::move(values));
  projected.ValidateStructure("ProjectFlow");
  return projected;
}

Result<Clustering> MlrMcl(const UGraph& g, const MlrMclOptions& options,
                          CsrMatrix* final_flow) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot cluster an empty graph");
  }
  StageSpan span(options.metrics, "mlr_mcl");
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_nnz", g.adjacency().nnz());
  // The sink is propagated like `seed`: a pipeline-level registry overrides
  // whatever the nested structs carry, so the whole run lands in one tree.
  RmclOptions rmcl = options.rmcl;
  CoarsenOptions coarsen = options.coarsen;
  coarsen.seed = options.seed;
  if (options.metrics != nullptr) {
    rmcl.metrics = options.metrics;
    coarsen.metrics = options.metrics;
  }
  if (options.cancel != nullptr) rmcl.cancel = options.cancel;
  DGC_ASSIGN_OR_RETURN(Hierarchy hierarchy, BuildHierarchy(g, coarsen));
  span.Metric("levels", hierarchy.NumLevels());

  // Flow matrices of every level (M_G per level, self-loops already on the
  // diagonal of coarse levels from contraction).
  std::vector<CsrMatrix> flow_graphs;
  flow_graphs.reserve(static_cast<size_t>(hierarchy.NumLevels()));
  for (const GraphLevel& level : hierarchy.levels) {
    if (rmcl.cancel != nullptr && rmcl.cancel->Expired()) {
      return rmcl.cancel->status();
    }
    flow_graphs.push_back(BuildFlowMatrixFromAdjacency(
        level.adj, rmcl.self_loop_scale, rmcl.num_threads));
  }

  // Converge on the coarsest level starting from M = M_G.
  const int last = hierarchy.NumLevels() - 1;
  CsrMatrix flow;
  {
    StageSpan coarsest_span(options.metrics, "coarsest_solve");
    coarsest_span.Metric("level", last);
    coarsest_span.Metric(
        "n", flow_graphs[static_cast<size_t>(last)].rows());
    DGC_ASSIGN_OR_RETURN(
        flow, RmclIterate(flow_graphs[static_cast<size_t>(last)],
                          flow_graphs[static_cast<size_t>(last)], rmcl,
                          options.coarsest_iterations));
  }

  // Project and refine through the finer levels.
  for (int level = last - 1; level >= 0; --level) {
    if (rmcl.cancel != nullptr && rmcl.cancel->Expired()) {
      return rmcl.cancel->status();
    }
    StageSpan level_span(options.metrics, "refine_level");
    level_span.Metric("level", level);
    const GraphLevel& fine = hierarchy.levels[static_cast<size_t>(level)];
    level_span.Metric("n", fine.adj.rows());
    {
      StageSpan project_span(options.metrics, "project_flow");
      DGC_ASSIGN_OR_RETURN(
          flow, ProjectFlow(flow, fine.to_coarser, fine.adj.rows(),
                            rmcl.num_threads));
      project_span.Metric("nnz", flow.nnz());
    }
    int iterations = options.iterations_per_level;
    if (level == 0) iterations += options.finest_extra_iterations;
    DGC_ASSIGN_OR_RETURN(
        flow, RmclIterate(std::move(flow),
                          flow_graphs[static_cast<size_t>(level)], rmcl,
                          iterations));
  }
  Clustering clustering = FlowToClustering(flow);
  if (options.min_cluster_size > 1) {
    MergeSmallClusters(g, options.min_cluster_size, &clustering);
  }
  span.Metric("num_clusters", clustering.NumClusters());
  if (final_flow != nullptr) *final_flow = std::move(flow);
  return clustering;
}

}  // namespace dgc
