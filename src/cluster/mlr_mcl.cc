#include "cluster/mlr_mcl.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace dgc {

Result<CsrMatrix> ProjectFlow(const CsrMatrix& coarse_flow,
                              const std::vector<Index>& to_coarser,
                              Index num_fine) {
  if (static_cast<Index>(to_coarser.size()) != num_fine) {
    return Status::InvalidArgument("to_coarser size != num_fine");
  }
  const Index num_coarse = coarse_flow.rows();
  // Children lists of each supernode (matching => 1 or 2 children).
  std::vector<std::vector<Index>> children(
      static_cast<size_t>(num_coarse));
  for (Index i = 0; i < num_fine; ++i) {
    const Index p = to_coarser[static_cast<size_t>(i)];
    if (p < 0 || p >= num_coarse) {
      return Status::OutOfRange("to_coarser entry out of range");
    }
    children[static_cast<size_t>(p)].push_back(i);
  }
  std::vector<Offset> row_ptr(static_cast<size_t>(num_fine) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  std::vector<std::pair<Index, Scalar>> row;
  for (Index i = 0; i < num_fine; ++i) {
    const Index p = to_coarser[static_cast<size_t>(i)];
    auto cols = coarse_flow.RowCols(p);
    auto vals = coarse_flow.RowValues(p);
    row.clear();
    for (size_t e = 0; e < cols.size(); ++e) {
      const auto& kids = children[static_cast<size_t>(cols[e])];
      if (kids.empty()) continue;
      const Scalar share = vals[e] / static_cast<Scalar>(kids.size());
      for (Index kid : kids) row.emplace_back(kid, share);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      col_idx.push_back(c);
      values.push_back(v);
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<Offset>(col_idx.size());
  }
  return CsrMatrix::FromParts(num_fine, num_fine, std::move(row_ptr),
                              std::move(col_idx), std::move(values));
}

Result<Clustering> MlrMcl(const UGraph& g, const MlrMclOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot cluster an empty graph");
  }
  CoarsenOptions coarsen = options.coarsen;
  coarsen.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(Hierarchy hierarchy, BuildHierarchy(g, coarsen));

  // Flow matrices of every level (M_G per level, self-loops already on the
  // diagonal of coarse levels from contraction).
  std::vector<CsrMatrix> flow_graphs;
  flow_graphs.reserve(static_cast<size_t>(hierarchy.NumLevels()));
  for (const GraphLevel& level : hierarchy.levels) {
    flow_graphs.push_back(BuildFlowMatrixFromAdjacency(
        level.adj, options.rmcl.self_loop_scale));
  }

  // Converge on the coarsest level starting from M = M_G.
  const int last = hierarchy.NumLevels() - 1;
  DGC_ASSIGN_OR_RETURN(
      CsrMatrix flow,
      RmclIterate(flow_graphs[static_cast<size_t>(last)],
                  flow_graphs[static_cast<size_t>(last)], options.rmcl,
                  options.coarsest_iterations));

  // Project and refine through the finer levels.
  for (int level = last - 1; level >= 0; --level) {
    const GraphLevel& fine = hierarchy.levels[static_cast<size_t>(level)];
    DGC_ASSIGN_OR_RETURN(flow, ProjectFlow(flow, fine.to_coarser,
                                           fine.adj.rows()));
    int iterations = options.iterations_per_level;
    if (level == 0) iterations += options.finest_extra_iterations;
    DGC_ASSIGN_OR_RETURN(
        flow, RmclIterate(std::move(flow),
                          flow_graphs[static_cast<size_t>(level)],
                          options.rmcl, iterations));
  }
  Clustering clustering = FlowToClustering(flow);
  if (options.min_cluster_size > 1) {
    MergeSmallClusters(g, options.min_cluster_size, &clustering);
  }
  return clustering;
}

}  // namespace dgc
