#include "cluster/graclus.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/initial_partition.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dgc {

namespace {

/// Cluster aggregates for the kernel-k-means objective
/// Q = sum_c W_cc / deg(c); Ncut = k - Q.
struct PartState {
  std::vector<Scalar> intra;   ///< W_cc: intra-cluster weight, both directions
  std::vector<Scalar> degree;  ///< deg(c): sum of member row sums
  std::vector<Index> size;
};

PartState ComputePartState(const CsrMatrix& adj,
                           const std::vector<Index>& labels, Index k) {
  PartState state;
  state.intra.assign(static_cast<size_t>(k), 0.0);
  state.degree.assign(static_cast<size_t>(k), 0.0);
  state.size.assign(static_cast<size_t>(k), 0);
  for (Index u = 0; u < adj.rows(); ++u) {
    const Index a = labels[static_cast<size_t>(u)];
    ++state.size[static_cast<size_t>(a)];
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      state.degree[static_cast<size_t>(a)] += vals[i];
      if (labels[static_cast<size_t>(cols[i])] == a) {
        state.intra[static_cast<size_t>(a)] += vals[i];
      }
    }
  }
  return state;
}

/// One local-search pass; returns the number of moves made.
int64_t NcutRefinePass(const CsrMatrix& adj, std::vector<Index>& labels,
                       PartState& state) {
  const Index n = adj.rows();
  int64_t moves = 0;
  std::unordered_map<Index, Scalar> link;
  auto q_term = [](Scalar intra, Scalar degree) {
    return degree > 0.0 ? intra / degree : 0.0;
  };
  for (Index u = 0; u < n; ++u) {
    const Index a = labels[static_cast<size_t>(u)];
    if (state.size[static_cast<size_t>(a)] <= 1) continue;
    link.clear();
    Scalar d_u = 0.0, self = 0.0;
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    bool boundary = false;
    for (size_t i = 0; i < cols.size(); ++i) {
      d_u += vals[i];
      if (cols[i] == u) {
        self = vals[i];
        continue;
      }
      const Index c = labels[static_cast<size_t>(cols[i])];
      link[c] += vals[i];
      if (c != a) boundary = true;
    }
    if (!boundary) continue;
    const Scalar l_ua = link.count(a) ? link[a] : 0.0;
    const Scalar base_a = q_term(state.intra[static_cast<size_t>(a)],
                                 state.degree[static_cast<size_t>(a)]);
    const Scalar new_a =
        q_term(state.intra[static_cast<size_t>(a)] - 2.0 * l_ua - self,
               state.degree[static_cast<size_t>(a)] - d_u);
    Index best = a;
    Scalar best_delta = 1e-12;  // strict improvement only
    for (const auto& [c, l_uc] : link) {
      if (c == a) continue;
      const Scalar base_c = q_term(state.intra[static_cast<size_t>(c)],
                                   state.degree[static_cast<size_t>(c)]);
      const Scalar new_c =
          q_term(state.intra[static_cast<size_t>(c)] + 2.0 * l_uc + self,
                 state.degree[static_cast<size_t>(c)] + d_u);
      const Scalar delta = (new_a + new_c) - (base_a + base_c);
      if (delta > best_delta) {
        best_delta = delta;
        best = c;
      }
    }
    if (best != a) {
      const Scalar l_ub = link[best];
      state.intra[static_cast<size_t>(a)] -= 2.0 * l_ua + self;
      state.degree[static_cast<size_t>(a)] -= d_u;
      --state.size[static_cast<size_t>(a)];
      state.intra[static_cast<size_t>(best)] += 2.0 * l_ub + self;
      state.degree[static_cast<size_t>(best)] += d_u;
      ++state.size[static_cast<size_t>(best)];
      labels[static_cast<size_t>(u)] = best;
      ++moves;
    }
  }
  return moves;
}

}  // namespace

Scalar LevelNormalizedCut(const CsrMatrix& adj,
                          const std::vector<Index>& labels, Index k) {
  PartState state = ComputePartState(adj, labels, k);
  Scalar ncut = 0.0;
  for (Index c = 0; c < k; ++c) {
    if (state.degree[static_cast<size_t>(c)] > 0.0) {
      ncut += (state.degree[static_cast<size_t>(c)] -
               state.intra[static_cast<size_t>(c)]) /
              state.degree[static_cast<size_t>(c)];
    }
  }
  return ncut;
}

Result<Clustering> GraclusCluster(const UGraph& g,
                                  const GraclusOptions& options) {
  const Index n = g.NumVertices();
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > n) {
    return Status::InvalidArgument("k (" + std::to_string(options.k) +
                                   ") exceeds vertex count (" +
                                   std::to_string(n) + ")");
  }
  if (options.k == 1) {
    return Clustering(std::vector<Index>(static_cast<size_t>(n), 0));
  }

  CoarsenOptions coarsen = options.coarsen;
  coarsen.target_vertices =
      std::max(coarsen.target_vertices, options.k * 4);
  coarsen.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(Hierarchy hierarchy, BuildHierarchy(g, coarsen));

  // Graclus balances by degree rather than vertex count; the greedy grower
  // uses vertex weights, which is close enough for the initial guess.
  const double cap = 4.0 * static_cast<double>(n) /
                     static_cast<double>(options.k);
  Rng rng(options.seed);
  std::vector<Index> labels =
      GreedyGrowPartition(hierarchy.coarsest(), options.k, cap, rng);

  for (int level = hierarchy.NumLevels() - 1; level >= 0; --level) {
    const GraphLevel& current = hierarchy.levels[static_cast<size_t>(level)];
    if (level < hierarchy.NumLevels() - 1) {
      labels = ProjectLabels(labels, current.to_coarser);
    }
    PartState state = ComputePartState(current.adj, labels, options.k);
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      if (NcutRefinePass(current.adj, labels, state) == 0) break;
    }
  }
  return Clustering(std::move(labels));
}

}  // namespace dgc
