// Recursive spectral bisection: the classic Shi-Malik style 2-way split —
// sweep-cut on the Fiedler direction of the normalized Laplacian —
// applied recursively until k parts exist. A fourth stage-2 clusterer for
// the framework, complementing the multilevel (Metis/Graclus) and flow
// (MLR-MCL) families with the spectral family the paper's related work
// centers on.
#pragma once

#include <cstdint>

#include "graph/clustering.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

struct RecursiveBisectionOptions {
  Index k = 8;
  /// Minimum part size; parts at or below this are never split further.
  Index min_part_size = 2;
  uint64_t seed = 43;
};

/// \brief Splits g into (up to) k parts by repeatedly bisecting the part
/// with the largest volume along its Fiedler sweep cut. Parts that cannot
/// be split (too small, disconnected remnants, eigen-solver failure) are
/// left intact, so fewer than k parts may be returned on degenerate
/// inputs. Every vertex is assigned.
Result<Clustering> RecursiveSpectralBisection(
    const UGraph& g, const RecursiveBisectionOptions& options = {});

/// \brief One 2-way normalized-cut split of the subgraph induced by
/// `vertices`: returns the side assignment (true = side A) chosen by the
/// minimum-Ncut sweep over the Fiedler ordering. Exposed for tests.
Result<std::vector<bool>> FiedlerBisect(const UGraph& g,
                                        const std::vector<Index>& vertices,
                                        uint64_t seed);

}  // namespace dgc
