// Multilevel coarsening via heavy-edge matching (Karypis-Kumar 1999),
// shared by the Metis-like partitioner, the Graclus-like normalized-cut
// clusterer, and MLR-MCL.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// One level of the coarsening hierarchy. Level 0 is the input graph.
/// Coarse adjacency keeps collapsed intra-supernode edges as *diagonal*
/// entries so that normalized-cut degrees stay exact across levels.
struct GraphLevel {
  CsrMatrix adj;                     ///< symmetric; diagonal = internal weight
  std::vector<Scalar> node_weight;   ///< number of original vertices inside
  /// Map from this level's vertices to the next-coarser level's vertices
  /// (empty at the coarsest level).
  std::vector<Index> to_coarser;
};

/// A full coarsening hierarchy, finest first.
struct Hierarchy {
  std::vector<GraphLevel> levels;

  const GraphLevel& coarsest() const { return levels.back(); }
  int NumLevels() const { return static_cast<int>(levels.size()); }
};

struct CoarsenOptions {
  /// Stop when the coarsest graph has at most this many vertices.
  Index target_vertices = 1000;
  /// Stop after this many coarsening steps regardless.
  int max_levels = 20;
  /// Stop early when a step shrinks the graph by less than this factor
  /// (matching has stalled, e.g. on star graphs).
  double min_shrink = 0.9;
  uint64_t seed = 11;

  /// Optional observability sink (obs/metrics.h). When non-null
  /// BuildHierarchy records one span per coarsening level (vertices, nnz,
  /// shrink factor); when null — the default — no instrumentation runs.
  MetricsRegistry* metrics = nullptr;
};

/// \brief Builds the hierarchy by repeated heavy-edge matching: vertices are
/// visited in random order and matched to the unmatched neighbor connected
/// by the heaviest edge.
Result<Hierarchy> BuildHierarchy(const UGraph& g,
                                 const CoarsenOptions& options = {});

/// \brief Heavy-edge matching on one level; returns the fine-to-coarse map
/// and the number of coarse vertices.
std::pair<std::vector<Index>, Index> HeavyEdgeMatching(const CsrMatrix& adj,
                                                       uint64_t seed);

/// \brief Contracts `adj` according to the fine-to-coarse map. Internal
/// edges accumulate on the coarse diagonal; node weights are summed.
Result<GraphLevel> ContractGraph(const CsrMatrix& adj,
                                 const std::vector<Scalar>& node_weight,
                                 const std::vector<Index>& to_coarser,
                                 Index num_coarse);

/// Projects coarse labels back to the finer level through `to_coarser`.
std::vector<Index> ProjectLabels(const std::vector<Index>& coarse_labels,
                                 const std::vector<Index>& to_coarser);

}  // namespace dgc
