// Metis-like multilevel k-way graph partitioner (Karypis-Kumar 1999):
// heavy-edge-matching coarsening, greedy multi-source initial partitioning
// at the coarsest level, then per-level boundary refinement minimizing the
// weighted edge cut under a balance constraint. This is the stage-2
// clusterer the paper calls "Metis" [12].
#pragma once

#include <cstdint>

#include "cluster/coarsen.h"
#include "graph/clustering.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

struct MetisOptions {
  /// Number of partitions (the paper's "number of clusters" axis).
  Index k = 16;
  /// Allowed part weight over the perfect balance (0.10 = +10%).
  double imbalance = 0.10;
  /// Greedy boundary-refinement passes per level.
  int refinement_passes = 6;
  CoarsenOptions coarsen;
  uint64_t seed = 17;
};

/// \brief Partitions g into options.k parts. Every vertex is assigned (no
/// kUnassigned labels). Returns InvalidArgument if k < 1 or k > |V|.
Result<Clustering> MetisPartition(const UGraph& g,
                                  const MetisOptions& options = {});

/// Total weight of edges whose endpoints lie in different parts.
Scalar EdgeCut(const CsrMatrix& adj, const std::vector<Index>& labels);

}  // namespace dgc
