#include "cluster/coarsen.h"

#include <algorithm>
#include <numeric>

#include "obs/span.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dgc {

std::pair<std::vector<Index>, Index> HeavyEdgeMatching(const CsrMatrix& adj,
                                                       uint64_t seed) {
  const Index n = adj.rows();
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(order);

  std::vector<Index> match(static_cast<size_t>(n), -1);
  for (Index u : order) {
    if (match[static_cast<size_t>(u)] != -1) continue;
    Index best = -1;
    Scalar best_weight = -1.0;
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const Index v = cols[i];
      if (v == u || match[static_cast<size_t>(v)] != -1) continue;
      if (vals[i] > best_weight) {
        best_weight = vals[i];
        best = v;
      }
    }
    if (best != -1) {
      match[static_cast<size_t>(u)] = best;
      match[static_cast<size_t>(best)] = u;
    } else {
      match[static_cast<size_t>(u)] = u;  // stays alone
    }
  }
  // Assign coarse ids: the smaller endpoint of each pair owns the id.
  std::vector<Index> to_coarser(static_cast<size_t>(n), -1);
  Index next = 0;
  for (Index u = 0; u < n; ++u) {
    const Index v = match[static_cast<size_t>(u)];
    if (v >= u) {  // owner (or self-matched)
      to_coarser[static_cast<size_t>(u)] = next;
      if (v != u) to_coarser[static_cast<size_t>(v)] = next;
      ++next;
    }
  }
  return {std::move(to_coarser), next};
}

Result<GraphLevel> ContractGraph(const CsrMatrix& adj,
                                 const std::vector<Scalar>& node_weight,
                                 const std::vector<Index>& to_coarser,
                                 Index num_coarse) {
  if (static_cast<Index>(to_coarser.size()) != adj.rows() ||
      static_cast<Index>(node_weight.size()) != adj.rows()) {
    return Status::InvalidArgument("contract: size mismatch");
  }
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(adj.nnz()));
  for (Index u = 0; u < adj.rows(); ++u) {
    const Index cu = to_coarser[static_cast<size_t>(u)];
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const Index cv = to_coarser[static_cast<size_t>(cols[i])];
      triplets.push_back(Triplet{cu, cv, vals[i]});
    }
  }
  GraphLevel level;
  DGC_ASSIGN_OR_RETURN(
      level.adj,
      CsrMatrix::FromTriplets(num_coarse, num_coarse, std::move(triplets)));
  level.node_weight.assign(static_cast<size_t>(num_coarse), 0.0);
  for (size_t u = 0; u < to_coarser.size(); ++u) {
    level.node_weight[static_cast<size_t>(to_coarser[u])] += node_weight[u];
  }
  return level;
}

Result<Hierarchy> BuildHierarchy(const UGraph& g,
                                 const CoarsenOptions& options) {
  StageSpan span(options.metrics, "coarsen");
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_nnz", g.adjacency().nnz());
  span.Metric("target_vertices", options.target_vertices);
  Hierarchy hierarchy;
  GraphLevel finest;
  finest.adj = g.adjacency();
  finest.node_weight.assign(static_cast<size_t>(g.NumVertices()), 1.0);
  hierarchy.levels.push_back(std::move(finest));

  for (int level = 0; level < options.max_levels; ++level) {
    GraphLevel& current = hierarchy.levels.back();
    const Index n = current.adj.rows();
    if (n <= options.target_vertices) break;
    StageSpan level_span(options.metrics, "coarsen.level");
    level_span.Metric("level", level);
    level_span.Metric("fine_vertices", n);
    auto [to_coarser, num_coarse] =
        HeavyEdgeMatching(current.adj, options.seed + static_cast<uint64_t>(
                                                          level));
    if (static_cast<double>(num_coarse) >
        options.min_shrink * static_cast<double>(n)) {
      level_span.Metric("stalled", int64_t{1});
      break;  // matching stalled
    }
    DGC_ASSIGN_OR_RETURN(GraphLevel coarse,
                         ContractGraph(current.adj, current.node_weight,
                                       to_coarser, num_coarse));
    level_span.Metric("coarse_vertices", num_coarse);
    level_span.Metric("coarse_nnz", coarse.adj.nnz());
    level_span.Metric("shrink", static_cast<double>(num_coarse) /
                                    static_cast<double>(n));
    current.to_coarser = std::move(to_coarser);
    hierarchy.levels.push_back(std::move(coarse));
  }
  span.Metric("levels", hierarchy.NumLevels());
  span.Metric("coarsest_vertices", hierarchy.coarsest().adj.rows());
  return hierarchy;
}

std::vector<Index> ProjectLabels(const std::vector<Index>& coarse_labels,
                                 const std::vector<Index>& to_coarser) {
  std::vector<Index> fine(to_coarser.size());
  for (size_t u = 0; u < to_coarser.size(); ++u) {
    fine[u] = coarse_labels[static_cast<size_t>(to_coarser[u])];
  }
  return fine;
}

}  // namespace dgc
