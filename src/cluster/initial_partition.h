// Initial partitioning at the coarsest level of a multilevel hierarchy:
// greedy multi-source BFS growing from random seeds, shared by the
// Metis-like and Graclus-like clusterers.
#pragma once

#include <vector>

#include "cluster/coarsen.h"
#include "util/rng.h"

namespace dgc {

/// \brief Sequential greedy graph growing (Karypis-Kumar): parts are filled
/// one at a time by BFS from random seeds until each reaches its weight
/// quota (capped at `cap`); leftovers go to the lightest part and empty
/// parts steal a vertex from the largest. Every vertex gets a label in
/// [0, k) and every part is non-empty when k <= |V|.
std::vector<Index> GreedyGrowPartition(const GraphLevel& level, Index k,
                                       double cap, Rng& rng);

}  // namespace dgc
