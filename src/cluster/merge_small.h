// Post-processing: merge clusters below a minimum size into their most
// strongly connected neighboring cluster. Flow-based clusterings of sparse
// graphs fragment into many tiny attractor basins; real MLR-MCL deployments
// counter this with a balance mechanism, which this utility approximates.
#pragma once

#include "graph/clustering.h"
#include "graph/ugraph.h"

namespace dgc {

/// \brief Repeatedly merges every cluster with fewer than `min_size`
/// members into the neighboring cluster it shares the largest total edge
/// weight with. Clusters with no external edges are left as they are.
/// Labels are compacted on return. Returns the final cluster count.
Index MergeSmallClusters(const UGraph& g, Index min_size,
                         Clustering* clustering);

}  // namespace dgc
