#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"

namespace dgc {

namespace {

double SquaredDistance(std::span<const Scalar> a, std::span<const Scalar> b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
DenseMatrix SeedPlusPlus(const DenseMatrix& points, Index k, Rng& rng) {
  const Index n = points.rows();
  const Index dim = points.cols();
  DenseMatrix centers(k, dim);
  std::vector<double> dist2(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  Index first = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
  for (Index d = 0; d < dim; ++d) centers(0, d) = points(first, d);
  for (Index c = 1; c < k; ++c) {
    double total = 0.0;
    for (Index i = 0; i < n; ++i) {
      const double d2 =
          SquaredDistance(points.Row(i), centers.Row(c - 1));
      dist2[static_cast<size_t>(i)] =
          std::min(dist2[static_cast<size_t>(i)], d2);
      total += dist2[static_cast<size_t>(i)];
    }
    Index chosen = n - 1;
    if (total > 0.0) {
      double roll = rng.UniformDouble() * total;
      for (Index i = 0; i < n; ++i) {
        roll -= dist2[static_cast<size_t>(i)];
        if (roll <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    }
    for (Index d = 0; d < dim; ++d) centers(c, d) = points(chosen, d);
  }
  return centers;
}

struct SingleRun {
  std::vector<Index> labels;
  double sse = 0.0;
  int iterations = 0;
};

SingleRun RunOnce(const DenseMatrix& points, const KMeansOptions& options,
                  Rng& rng) {
  const Index n = points.rows();
  const Index dim = points.cols();
  const Index k = options.k;
  DenseMatrix centers = SeedPlusPlus(points, k, rng);
  SingleRun run;
  run.labels.assign(static_cast<size_t>(n), 0);
  std::vector<Index> counts(static_cast<size_t>(k), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    run.sse = 0.0;
    for (Index i = 0; i < n; ++i) {
      Index best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (Index c = 0; c < k; ++c) {
        const double d = SquaredDistance(points.Row(i), centers.Row(c));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (run.labels[static_cast<size_t>(i)] != best) {
        run.labels[static_cast<size_t>(i)] = best;
        changed = true;
      }
      run.sse += best_d;
    }
    run.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Recompute centers.
    centers = DenseMatrix(k, dim, 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (Index i = 0; i < n; ++i) {
      const Index c = run.labels[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (Index d = 0; d < dim; ++d) centers(c, d) += points(i, d);
    }
    for (Index c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Reseed an empty cluster from a random point.
        const Index p = static_cast<Index>(
            rng.UniformU64(static_cast<uint64_t>(n)));
        for (Index d = 0; d < dim; ++d) centers(c, d) = points(p, d);
        continue;
      }
      const double inv =
          1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      for (Index d = 0; d < dim; ++d) centers(c, d) *= inv;
    }
  }
  return run;
}

}  // namespace

Result<KMeansResult> KMeans(const DenseMatrix& points,
                            const KMeansOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > points.rows()) {
    return Status::InvalidArgument("k exceeds number of points");
  }
  Rng rng(options.seed);
  SingleRun best;
  best.sse = std::numeric_limits<double>::max();
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    SingleRun run = RunOnce(points, options, rng);
    if (run.sse < best.sse) best = std::move(run);
  }
  KMeansResult result;
  result.clustering = Clustering(std::move(best.labels));
  result.sse = best.sse;
  result.iterations = best.iterations;
  return result;
}

}  // namespace dgc
