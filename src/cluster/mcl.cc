#include "cluster/mcl.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace dgc {

namespace {

/// Inflates (entry^r), prunes, caps and renormalizes one flow row held in
/// unsorted (cols, vals). Because inflation is monotone, the top-k
/// selection happens on raw values *before* the expensive pow() calls, so
/// cost is O(t) for the selection plus O(k log k) for the final sort —
/// never O(t log t) on the (possibly dense) expanded row.
void InflatePruneRow(std::vector<Index>& cols, std::vector<Scalar>& vals,
                     const RmclOptions& options,
                     std::vector<std::pair<Scalar, Index>>& scratch) {
  if (cols.empty()) return;
  scratch.clear();
  for (size_t i = 0; i < cols.size(); ++i) {
    scratch.emplace_back(vals[i], cols[i]);
  }
  const size_t cap = static_cast<size_t>(options.max_row_nnz);
  if (scratch.size() > cap) {
    std::nth_element(
        scratch.begin(), scratch.begin() + static_cast<long>(cap),
        scratch.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    scratch.resize(cap);
  }
  // Inflate the survivors and normalize among them.
  Scalar sum = 0.0;
  for (auto& [v, c] : scratch) {
    v = std::pow(v, options.inflation);
    sum += v;
  }
  if (sum <= 0.0) {
    cols.resize(1);
    vals.resize(1);
    vals[0] = 1.0;
    return;
  }
  // Drop normalized entries below the prune threshold, keeping at least
  // the largest so the row never empties.
  size_t out = 0;
  size_t best = 0;
  for (size_t i = 0; i < scratch.size(); ++i) {
    if (scratch[i].first > scratch[best].first) best = i;
    if (scratch[i].first / sum < options.prune_threshold) continue;
    scratch[out++] = scratch[i];
  }
  if (out == 0) {
    scratch[0] = scratch[best];
    out = 1;
  }
  scratch.resize(out);
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  Scalar kept = 0.0;
  for (const auto& [v, c] : scratch) kept += v;
  cols.resize(out);
  vals.resize(out);
  for (size_t i = 0; i < out; ++i) {
    cols[i] = scratch[i].second;
    vals[i] = scratch[i].first / kept;
  }
}

}  // namespace

CsrMatrix BuildFlowMatrixFromAdjacency(const CsrMatrix& adj,
                                       Scalar self_loop_scale) {
  const Index n = adj.rows();
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  col_idx.reserve(static_cast<size_t>(adj.nnz() + n));
  values.reserve(static_cast<size_t>(adj.nnz() + n));
  for (Index u = 0; u < n; ++u) {
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    // Mean incident weight (excluding any existing diagonal).
    Scalar sum = 0.0;
    Offset count = 0;
    Scalar existing_self = 0.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) {
        existing_self = vals[i];
        continue;
      }
      sum += vals[i];
      ++count;
    }
    const Scalar self =
        existing_self +
        self_loop_scale * (count > 0 ? sum / static_cast<Scalar>(count)
                                     : 1.0);
    // Merge the self-loop into the sorted row.
    bool inserted = false;
    Scalar row_total = 0.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) {
        col_idx.push_back(u);
        values.push_back(self);
        row_total += self;
        inserted = true;
      } else {
        if (!inserted && cols[i] > u) {
          col_idx.push_back(u);
          values.push_back(self);
          row_total += self;
          inserted = true;
        }
        col_idx.push_back(cols[i]);
        values.push_back(vals[i]);
        row_total += vals[i];
      }
    }
    if (!inserted) {
      col_idx.push_back(u);
      values.push_back(self);
      row_total += self;
    }
    // Normalize the row in place.
    for (size_t i = static_cast<size_t>(row_ptr[static_cast<size_t>(u)]);
         i < values.size(); ++i) {
      values[i] /= row_total;
    }
    row_ptr[static_cast<size_t>(u) + 1] =
        static_cast<Offset>(col_idx.size());
  }
  auto result = CsrMatrix::FromParts(n, n, std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
  DGC_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

CsrMatrix BuildFlowMatrix(const UGraph& g, Scalar self_loop_scale) {
  return BuildFlowMatrixFromAdjacency(g.adjacency(), self_loop_scale);
}

Result<CsrMatrix> RmclIterate(CsrMatrix m, const CsrMatrix& mg,
                              const RmclOptions& options, int iterations) {
  if (m.rows() != mg.rows() || m.cols() != mg.cols()) {
    return Status::InvalidArgument("flow/graph matrix shape mismatch");
  }
  if (options.inflation <= 1.0) {
    return Status::InvalidArgument("inflation must be > 1");
  }
  const Index n = m.rows();
  std::vector<Scalar> accum(static_cast<size_t>(n), 0.0);
  std::vector<Index> marker(static_cast<size_t>(n), -1);
  std::vector<Index> touched;
  std::vector<Index> row_cols;
  std::vector<Scalar> row_vals;
  std::vector<std::pair<Scalar, Index>> scratch;

  for (int iter = 0; iter < iterations; ++iter) {
    const CsrMatrix& right = options.regularized ? mg : m;
    std::vector<Offset> new_row_ptr(static_cast<size_t>(n) + 1, 0);
    std::vector<Index> new_cols;
    std::vector<Scalar> new_vals;
    new_cols.reserve(static_cast<size_t>(m.nnz()));
    new_vals.reserve(static_cast<size_t>(m.nnz()));
    Scalar total_diff = 0.0;
    for (Index r = 0; r < n; ++r) {
      // Expansion: row r of M * right.
      touched.clear();
      auto mcols = m.RowCols(r);
      auto mvals = m.RowValues(r);
      for (size_t i = 0; i < mcols.size(); ++i) {
        const Index k = mcols[i];
        const Scalar mv = mvals[i];
        auto rcols = right.RowCols(k);
        auto rvals = right.RowValues(k);
        for (size_t j = 0; j < rcols.size(); ++j) {
          const Index c = rcols[j];
          if (marker[static_cast<size_t>(c)] != r) {
            marker[static_cast<size_t>(c)] = r;
            accum[static_cast<size_t>(c)] = 0.0;
            touched.push_back(c);
          }
          accum[static_cast<size_t>(c)] += mv * rvals[j];
        }
      }
      row_cols.assign(touched.begin(), touched.end());
      row_vals.resize(touched.size());
      for (size_t i = 0; i < touched.size(); ++i) {
        row_vals[i] = accum[static_cast<size_t>(touched[i])];
      }
      InflatePruneRow(row_cols, row_vals, options, scratch);
      // L1 change of this row versus the previous flow (sorted merge).
      {
        auto old_cols = m.RowCols(r);
        auto old_vals = m.RowValues(r);
        size_t a = 0, b = 0;
        while (a < row_cols.size() || b < old_cols.size()) {
          if (b >= old_cols.size() ||
              (a < row_cols.size() && row_cols[a] < old_cols[b])) {
            total_diff += std::abs(row_vals[a]);
            ++a;
          } else if (a >= row_cols.size() || old_cols[b] < row_cols[a]) {
            total_diff += std::abs(old_vals[b]);
            ++b;
          } else {
            total_diff += std::abs(row_vals[a] - old_vals[b]);
            ++a;
            ++b;
          }
        }
      }
      new_cols.insert(new_cols.end(), row_cols.begin(), row_cols.end());
      new_vals.insert(new_vals.end(), row_vals.begin(), row_vals.end());
      new_row_ptr[static_cast<size_t>(r) + 1] =
          static_cast<Offset>(new_cols.size());
    }
    DGC_ASSIGN_OR_RETURN(m, CsrMatrix::FromParts(n, n, std::move(new_row_ptr),
                                                 std::move(new_cols),
                                                 std::move(new_vals)));
    if (total_diff / static_cast<Scalar>(n) < options.convergence_tol) {
      break;
    }
  }
  return m;
}

Clustering FlowToClustering(const CsrMatrix& m) {
  const Index n = m.rows();
  // Union vertices with their attractors; components become clusters.
  std::vector<Index> parent(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<Index(Index)> find = [&](Index x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (Index r = 0; r < n; ++r) {
    auto cols = m.RowCols(r);
    auto vals = m.RowValues(r);
    Index best = -1;
    Scalar best_val = -1.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (vals[i] > best_val) {
        best_val = vals[i];
        best = cols[i];
      }
    }
    if (best == -1) continue;  // empty row -> singleton
    const Index ra = find(r);
    const Index rb = find(best);
    if (ra != rb) parent[static_cast<size_t>(ra)] = rb;
  }
  Clustering clustering(n);
  for (Index v = 0; v < n; ++v) clustering.Assign(v, find(v));
  clustering.Compact();
  return clustering;
}

Result<Clustering> Rmcl(const UGraph& g, const RmclOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot cluster an empty graph");
  }
  CsrMatrix mg = BuildFlowMatrix(g, options.self_loop_scale);
  DGC_ASSIGN_OR_RETURN(CsrMatrix flow,
                       RmclIterate(mg, mg, options, options.max_iterations));
  return FlowToClustering(flow);
}

}  // namespace dgc
