#include "cluster/mcl.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/logging.h"
#include "util/parallel_audit.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace dgc {

namespace {

/// Inflates (entry^r), prunes, caps and renormalizes one flow row held in
/// unsorted (cols, vals). Because inflation is monotone, the top-k
/// selection happens on raw values *before* the expensive pow() calls, so
/// cost is O(t) for the selection plus O(k log k) for the final sort —
/// never O(t log t) on the (possibly dense) expanded row.
void InflatePruneRow(Index row, std::vector<Index>& cols,
                     std::vector<Scalar>& vals, const RmclOptions& options,
                     std::vector<std::pair<Scalar, Index>>& scratch,
                     std::vector<Scalar>& prune_vals,
                     std::vector<uint8_t>& prune_mask) {
  if (cols.empty()) return;
  scratch.clear();
  for (size_t i = 0; i < cols.size(); ++i) {
    scratch.emplace_back(vals[i], cols[i]);
  }
  const size_t cap = static_cast<size_t>(options.max_row_nnz);
  if (scratch.size() > cap) {
    std::nth_element(
        scratch.begin(), scratch.begin() + static_cast<long>(cap),
        scratch.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    scratch.resize(cap);
  }
  // Inflate the survivors and normalize among them.
  Scalar sum = 0.0;
  for (auto& [v, c] : scratch) {
    v = std::pow(v, options.inflation);
    sum += v;
  }
  if (sum <= 0.0) {
    // Every inflated value underflowed to zero. Collapse the row onto its
    // self-loop if it has one (the natural attractor), else onto the
    // largest-magnitude original entry — never an arbitrary stale column.
    size_t keep = 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (std::abs(vals[i]) > std::abs(vals[keep])) keep = i;
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == row) {
        keep = i;
        break;
      }
    }
    cols[0] = cols[keep];
    cols.resize(1);
    vals.resize(1);
    vals[0] = 1.0;
    return;
  }
  // Drop normalized entries below the prune threshold, keeping at least
  // the largest so the row never empties. The division+compare scan is the
  // vectorized primitive (lane-wise IEEE division — bit-identical
  // decisions); best-tracking and compaction stay scalar.
  const size_t t = scratch.size();
  prune_vals.resize(t);
  prune_mask.resize(t);
  for (size_t i = 0; i < t; ++i) prune_vals[i] = scratch[i].first;
  simd::DivThresholdMask(prune_vals.data(), t, sum, options.prune_threshold,
                         prune_mask.data());
  size_t out = 0;
  size_t best = 0;
  for (size_t i = 0; i < t; ++i) {
    if (scratch[i].first > scratch[best].first) best = i;
    if (prune_mask[i]) continue;
    scratch[out++] = scratch[i];
  }
  if (out == 0) {
    scratch[0] = scratch[best];
    out = 1;
  }
  scratch.resize(out);
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  Scalar kept = 0.0;
  for (const auto& [v, c] : scratch) kept += v;
  cols.resize(out);
  vals.resize(out);
  for (size_t i = 0; i < out; ++i) {
    cols[i] = scratch[i].second;
    vals[i] = scratch[i].first / kept;
  }
}

/// Per-worker workspace for the row-parallel R-MCL loop, allocated once and
/// reused across iterations. `marker` holds int64 stamps (iteration * n +
/// row) so it never needs clearing between iterations; the buffered rows of
/// the current iteration live in (rows, cols, vals) until pass 2 copies
/// them to their final CSR offsets.
struct RmclWorkspace {
  std::vector<Scalar> accum;
  std::vector<int64_t> marker;
  /// Fixed-size first-touch buffer for the expansion (filled through
  /// simd::ScatterAccumulate64, which preserves insertion order — the
  /// nth_element cap in InflatePruneRow tie-breaks on it).
  std::vector<Index> touched;
  std::vector<Index> row_cols;
  std::vector<Scalar> row_vals;
  std::vector<std::pair<Scalar, Index>> scratch;
  std::vector<Scalar> prune_vals;    ///< SoA values for the prune scan
  std::vector<uint8_t> prune_mask;   ///< its below-threshold verdicts
  std::vector<Index> rows;   ///< rows buffered by this worker this iteration
  std::vector<Index> cols;   ///< their column indices, concatenated
  std::vector<Scalar> vals;  ///< their values, concatenated

  void EnsureSize(Index n) {
    if (static_cast<Index>(marker.size()) < n) {
      accum.assign(static_cast<size_t>(n), 0.0);
      marker.assign(static_cast<size_t>(n), -1);
      touched.resize(static_cast<size_t>(n));
    }
  }
  void ClearBuffers() {
    rows.clear();
    cols.clear();
    vals.clear();
  }
};

}  // namespace

CsrMatrix BuildFlowMatrixFromAdjacency(const CsrMatrix& adj,
                                       Scalar self_loop_scale,
                                       int num_threads) {
  const Index n = adj.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(n, 1)));
  // Pass 1: per-row sizes (one extra slot when the diagonal is absent).
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  ParallelFor(0, n, threads, [&](int64_t u64) {
    const Index u = static_cast<Index>(u64);
    auto cols = adj.RowCols(u);
    const bool has_diag = std::binary_search(cols.begin(), cols.end(), u);
    row_ptr[static_cast<size_t>(u) + 1] = adj.RowNnz(u) + (has_diag ? 0 : 1);
  });
  for (Index u = 0; u < n; ++u) {
    row_ptr[static_cast<size_t>(u) + 1] += row_ptr[static_cast<size_t>(u)];
  }
  // Pass 2: each row is filled and normalized independently at its final
  // offset, so the result is bit-identical for every thread count.
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  ParallelFor(0, n, threads, [&](int64_t u64) {
    const Index u = static_cast<Index>(u64);
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    const size_t at = static_cast<size_t>(row_ptr[static_cast<size_t>(u)]);
    const size_t nnz_u =
        static_cast<size_t>(row_ptr[static_cast<size_t>(u) + 1]) - at;
    audit::AuditSpan audit_c(col_idx.data() + at, nnz_u, "flow.col_idx");
    audit::AuditSpan audit_v(values.data() + at, nnz_u, "flow.values");
    // Mean incident weight (excluding any existing diagonal).
    Scalar sum = 0.0;
    Offset count = 0;
    Scalar existing_self = 0.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) {
        existing_self = vals[i];
        continue;
      }
      sum += vals[i];
      ++count;
    }
    const Scalar self =
        existing_self +
        self_loop_scale * (count > 0 ? sum / static_cast<Scalar>(count)
                                     : 1.0);
    // Merge the self-loop into the sorted row.
    size_t out = static_cast<size_t>(row_ptr[static_cast<size_t>(u)]);
    bool inserted = false;
    Scalar row_total = 0.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == u) {
        col_idx[out] = u;
        values[out++] = self;
        row_total += self;
        inserted = true;
      } else {
        if (!inserted && cols[i] > u) {
          col_idx[out] = u;
          values[out++] = self;
          row_total += self;
          inserted = true;
        }
        col_idx[out] = cols[i];
        values[out++] = vals[i];
        row_total += vals[i];
      }
    }
    if (!inserted) {
      col_idx[out] = u;
      values[out++] = self;
      row_total += self;
    }
    // Normalize the row in place.
    for (size_t i = static_cast<size_t>(row_ptr[static_cast<size_t>(u)]);
         i < out; ++i) {
      values[i] /= row_total;
    }
  });
  // Each row is the sorted source row with the diagonal merged in; validity
  // is checked in debug builds only so the parallel build stays O(nnz/p).
  CsrMatrix flow = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  flow.ValidateStructure("BuildFlowMatrixFromAdjacency");
  return flow;
}

CsrMatrix BuildFlowMatrix(const UGraph& g, Scalar self_loop_scale,
                          int num_threads) {
  return BuildFlowMatrixFromAdjacency(g.adjacency(), self_loop_scale,
                                      num_threads);
}

Result<CsrMatrix> RmclIterate(CsrMatrix m, const CsrMatrix& mg,
                              const RmclOptions& options, int iterations) {
  if (m.rows() != mg.rows() || m.cols() != mg.cols()) {
    return Status::InvalidArgument("flow/graph matrix shape mismatch");
  }
  if (options.inflation <= 1.0) {
    return Status::InvalidArgument("inflation must be > 1");
  }
  const Index n = m.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(n, 1)));
  StageSpan span(options.metrics, "rmcl");
  if (span.live()) {
    span.Metric("n", n);
    span.Metric("input_nnz", m.nnz());
    span.Metric("inflation", options.inflation);
    span.Metric("prune_threshold", options.prune_threshold);
    span.Metric("max_iterations", iterations);
  }
  std::vector<RmclWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(n), 0);
  std::vector<Scalar> row_diff(static_cast<size_t>(n), 0.0);
  // Per-worker expanded-nnz shards (pre-prune row sizes). Row contributions
  // are deterministic and integer addition commutes, so the per-iteration
  // total is bit-identical across thread counts.
  std::vector<int64_t> expanded(static_cast<size_t>(threads), 0);
  bool converged = false;
  int iterations_run = 0;

  for (int iter = 0; iter < iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->Expired()) {
      return options.cancel->status();
    }
    StageSpan iter_span(options.metrics, "rmcl.iteration");
    iter_span.Metric("iteration", iter);
    const CsrMatrix& right = options.regularized ? mg : m;
    const int64_t stamp_base = static_cast<int64_t>(iter) * n;
    for (auto& w : workspaces) w.ClearBuffers();
    if (span.live()) expanded.assign(expanded.size(), 0);
    // Pass 1: expand, inflate and prune each row into per-worker buffers.
    // Every quantity written (row_nnz, row_diff, the row itself) depends
    // only on the row, so dynamic chunk assignment cannot change results.
    ParallelForWorkers(
        0, n, threads, /*grain=*/0,
        [&](int worker, int64_t lo, int64_t hi) {
          // Chunk-granularity cancellation: a tripped deadline/memory budget
          // makes every remaining chunk a no-op, so the loop drains within
          // one chunk's worth of work per worker.
          if (options.cancel != nullptr && options.cancel->Expired()) return;
          RmclWorkspace& w = workspaces[static_cast<size_t>(worker)];
          w.EnsureSize(n);
          audit::AuditSpan audit_nnz(row_nnz.data() + lo,
                                     static_cast<size_t>(hi - lo),
                                     "rmcl.row_nnz");
          audit::AuditSpan audit_diff(row_diff.data() + lo,
                                      static_cast<size_t>(hi - lo),
                                      "rmcl.row_diff");
          for (int64_t r64 = lo; r64 < hi; ++r64) {
            const Index r = static_cast<Index>(r64);
            const int64_t stamp = stamp_base + r;
            // Expansion: row r of M * right, via the vectorized
            // scatter-accumulate (per-lane IEEE mul+add, bit-identical to
            // the scalar loop; first-touch order preserved).
            Index touched_count = 0;
            auto mcols = m.RowCols(r);
            auto mvals = m.RowValues(r);
            for (size_t i = 0; i < mcols.size(); ++i) {
              const Index k = mcols[i];
              auto rcols = right.RowCols(k);
              auto rvals = right.RowValues(k);
              touched_count += simd::ScatterAccumulate64(
                  mvals[i], rcols.data(), rvals.data(), rcols.size(),
                  w.accum.data(), w.marker.data(), stamp,
                  w.touched.data() + touched_count);
            }
            if (options.metrics != nullptr) {
              expanded[static_cast<size_t>(worker)] +=
                  static_cast<int64_t>(touched_count);
            }
            w.row_cols.assign(w.touched.begin(),
                              w.touched.begin() + touched_count);
            w.row_vals.resize(static_cast<size_t>(touched_count));
            simd::Gather(w.accum.data(), w.touched.data(),
                         static_cast<size_t>(touched_count),
                         w.row_vals.data());
            InflatePruneRow(r, w.row_cols, w.row_vals, options, w.scratch,
                            w.prune_vals, w.prune_mask);
            // L1 change of this row versus the previous flow (sorted
            // merge).
            {
              auto old_cols = m.RowCols(r);
              auto old_vals = m.RowValues(r);
              Scalar diff = 0.0;
              size_t a = 0, b = 0;
              while (a < w.row_cols.size() || b < old_cols.size()) {
                if (b >= old_cols.size() ||
                    (a < w.row_cols.size() && w.row_cols[a] < old_cols[b])) {
                  diff += std::abs(w.row_vals[a]);
                  ++a;
                } else if (a >= w.row_cols.size() ||
                           old_cols[b] < w.row_cols[a]) {
                  diff += std::abs(old_vals[b]);
                  ++b;
                } else {
                  diff += std::abs(w.row_vals[a] - old_vals[b]);
                  ++a;
                  ++b;
                }
              }
              row_diff[static_cast<size_t>(r)] = diff;
            }
            row_nnz[static_cast<size_t>(r)] =
                static_cast<Offset>(w.row_cols.size());
            w.rows.push_back(r);
            w.cols.insert(w.cols.end(), w.row_cols.begin(), w.row_cols.end());
            w.vals.insert(w.vals.end(), w.row_vals.begin(), w.row_vals.end());
          }
        });
    // A cancelled pass 1 leaves partially-built buffers; abandon them
    // rather than assembling a half-computed flow matrix.
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return options.cancel->status();
    }
    // Serial prefix sum: deterministic row pointers for any thread count.
    std::vector<Offset> new_row_ptr(static_cast<size_t>(n) + 1, 0);
    for (Index r = 0; r < n; ++r) {
      new_row_ptr[static_cast<size_t>(r) + 1] =
          new_row_ptr[static_cast<size_t>(r)] +
          row_nnz[static_cast<size_t>(r)];
    }
    // Pass 2: each worker copies its buffered rows to their final offsets.
    std::vector<Index> new_cols(static_cast<size_t>(new_row_ptr.back()));
    std::vector<Scalar> new_vals(static_cast<size_t>(new_row_ptr.back()));
    ParallelFor(0, threads, threads, [&](int64_t wi) {
      const RmclWorkspace& w = workspaces[static_cast<size_t>(wi)];
      size_t pos = 0;
      for (Index r : w.rows) {
        const size_t k = static_cast<size_t>(row_nnz[static_cast<size_t>(r)]);
        const size_t at =
            static_cast<size_t>(new_row_ptr[static_cast<size_t>(r)]);
        audit::AuditSpan audit_c(new_cols.data() + at, k, "rmcl.col_idx");
        audit::AuditSpan audit_v(new_vals.data() + at, k, "rmcl.values");
        std::copy_n(w.cols.begin() + static_cast<long>(pos), k,
                    new_cols.begin() + static_cast<long>(at));
        std::copy_n(w.vals.begin() + static_cast<long>(pos), k,
                    new_vals.begin() + static_cast<long>(at));
        pos += k;
      }
    });
    // Serial reduction in row order, so the convergence decision (and with
    // it the iteration count) is bit-identical across thread counts. Rows
    // are sorted, deduplicated and in range by construction; skip the
    // O(nnz) validation pass that would otherwise serialize every
    // iteration.
    Scalar total_diff = 0.0;
    for (Index r = 0; r < n; ++r) {
      total_diff += row_diff[static_cast<size_t>(r)];
    }
    m = CsrMatrix::FromPartsUnchecked(n, n, std::move(new_row_ptr),
                                      std::move(new_cols),
                                      std::move(new_vals));
    m.ValidateStructure("RmclIterate");
    ++iterations_run;
    const Scalar residual = total_diff / static_cast<Scalar>(n);
    if (iter_span.live()) {
      int64_t expanded_nnz = 0;
      for (const int64_t e : expanded) expanded_nnz += e;
      iter_span.Metric("expanded_nnz", expanded_nnz);
      iter_span.Metric("nnz", m.nnz());
      iter_span.Metric("residual", residual);
      iter_span.PerfMetric("workers", threads);
    }
    if (residual < options.convergence_tol) {
      converged = true;
      break;
    }
  }
  if (span.live()) {
    span.Metric("iterations_run", iterations_run);
    span.Metric("converged", static_cast<int64_t>(converged));
    span.Metric("output_nnz", m.nnz());
  }
  return m;
}

Clustering FlowToClustering(const CsrMatrix& m) {
  const Index n = m.rows();
  // Union vertices with their attractors; components become clusters.
  std::vector<Index> parent(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<Index(Index)> find = [&](Index x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (Index r = 0; r < n; ++r) {
    auto cols = m.RowCols(r);
    auto vals = m.RowValues(r);
    Index best = -1;
    Scalar best_val = -1.0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (vals[i] > best_val) {
        best_val = vals[i];
        best = cols[i];
      }
    }
    if (best == -1) continue;  // empty row -> singleton
    const Index ra = find(r);
    const Index rb = find(best);
    if (ra != rb) parent[static_cast<size_t>(ra)] = rb;
  }
  Clustering clustering(n);
  for (Index v = 0; v < n; ++v) clustering.Assign(v, find(v));
  clustering.Compact();
  return clustering;
}

Result<Clustering> Rmcl(const UGraph& g, const RmclOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot cluster an empty graph");
  }
  CsrMatrix mg =
      BuildFlowMatrix(g, options.self_loop_scale, options.num_threads);
  DGC_ASSIGN_OR_RETURN(CsrMatrix flow,
                       RmclIterate(mg, mg, options, options.max_iterations));
  return FlowToClustering(flow);
}

Result<Clustering> RmclWarmStart(const UGraph& g,
                                 const CsrMatrix& previous_flow,
                                 std::span<const Index> touched_rows,
                                 const RmclOptions& options, int iterations,
                                 CsrMatrix* final_flow) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot cluster an empty graph");
  }
  const Index n = g.NumVertices();
  if (previous_flow.rows() != n || previous_flow.cols() != n) {
    return Status::InvalidArgument(
        "previous flow shape does not match the graph (warm starts require "
        "an unchanged vertex set)");
  }
  for (size_t i = 0; i < touched_rows.size(); ++i) {
    const Index r = touched_rows[i];
    if (r < 0 || r >= n) {
      return Status::OutOfRange("touched row out of range");
    }
    if (i > 0 && touched_rows[i - 1] >= r) {
      return Status::InvalidArgument(
          "touched rows must be sorted and unique");
    }
  }
  StageSpan span(options.metrics, "rmcl.warm_start");
  if (span.live()) {
    span.Metric("n", n);
    span.Metric("touched_rows", static_cast<int64_t>(touched_rows.size()));
  }
  CsrMatrix mg =
      BuildFlowMatrix(g, options.self_loop_scale, options.num_threads);

  // Seed M0: previous flow rows everywhere, fresh M_G rows on the touched
  // set. Serial two-cursor row splice (memcpy-bound, deterministic).
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index r = 0; r < n; ++r) {
    const bool touched =
        std::binary_search(touched_rows.begin(), touched_rows.end(), r);
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] +
        (touched ? mg.RowNnz(r) : previous_flow.RowNnz(r));
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  for (Index r = 0; r < n; ++r) {
    const bool touched =
        std::binary_search(touched_rows.begin(), touched_rows.end(), r);
    const CsrMatrix& src = touched ? mg : previous_flow;
    const auto cols = src.RowCols(r);
    const auto vals = src.RowValues(r);
    const size_t at = static_cast<size_t>(row_ptr[static_cast<size_t>(r)]);
    std::copy(cols.begin(), cols.end(), col_idx.begin() + static_cast<long>(at));
    std::copy(vals.begin(), vals.end(), values.begin() + static_cast<long>(at));
  }
  // Every row is a verbatim copy of a validated source row.
  CsrMatrix m0 = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  m0.ValidateStructure("RmclWarmStart");

  DGC_ASSIGN_OR_RETURN(CsrMatrix flow,
                       RmclIterate(std::move(m0), mg, options, iterations));
  Clustering clustering = FlowToClustering(flow);
  if (span.live()) {
    span.Metric("num_clusters", clustering.NumClusters());
  }
  if (final_flow != nullptr) *final_flow = std::move(flow);
  return clustering;
}

}  // namespace dgc
