// Markov clustering: MCL (van Dongen 2000) and its regularized variant
// R-MCL (Satuluri-Parthasarathy, KDD 2009), the flow engine underneath
// MLR-MCL — the paper's primary stage-2 clustering algorithm [20].
//
// Flow matrices are row-stochastic here (the transpose of the usual
// column-stochastic presentation): one R-MCL iteration is
//   M := Prune(Inflate(M * M_G, r))
// where M_G is the row-stochastic graph matrix with self-loops. Cluster
// granularity is controlled indirectly by the inflation parameter r —
// exactly the "indirect control" the paper notes in Section 4.2.
#pragma once

#include <cstdint>
#include <span>

#include "graph/clustering.h"
#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

struct RmclOptions {
  /// Inflation exponent r; larger r => more, smaller clusters.
  double inflation = 2.0;
  int max_iterations = 60;
  /// Flow entries below this (rows sum to 1) are dropped after inflation.
  Scalar prune_threshold = 1e-4;
  /// Hard cap on stored entries per flow row (keep-largest).
  Index max_row_nnz = 50;
  /// Self-loop weight added to each vertex before normalization, as a
  /// multiple of the vertex's mean incident edge weight.
  Scalar self_loop_scale = 1.0;
  /// Use regularized expansion M*M_G (R-MCL). false gives classic MCL
  /// expansion M*M.
  bool regularized = true;
  /// Converged when the mean L1 row change falls below this. Attractor
  /// extraction is only meaningful near convergence, so keep it small.
  Scalar convergence_tol = 1e-6;
  /// Threads for the row-parallel expand/inflate/prune loop. 1 (the
  /// default) reproduces the paper's single-threaded setup; 0 uses one
  /// thread per hardware core. The flow matrix is bit-identical for every
  /// setting.
  int num_threads = 1;

  /// Optional observability sink (obs/metrics.h). When non-null RmclIterate
  /// records one span per iteration (flow nnz, expanded nnz, convergence
  /// residual); when null — the default — no instrumentation runs at all.
  MetricsRegistry* metrics = nullptr;

  /// Optional cooperative cancellation (util/budget.h). When non-null the
  /// expand/inflate/prune loop polls the token at chunk granularity inside
  /// each iteration and at every iteration boundary; a tripped token aborts
  /// with its status (kDeadlineExceeded / kResourceExhausted). Null — the
  /// default — adds no per-chunk work. Completed runs are bit-identical
  /// with or without a token.
  CancelToken* cancel = nullptr;
};

/// Row-stochastic flow matrix M_G of g: adjacency plus scaled self-loops,
/// rows normalized. Zero-degree vertices get a pure self-loop row.
CsrMatrix BuildFlowMatrix(const UGraph& g, Scalar self_loop_scale = 1.0,
                          int num_threads = 1);

/// As above but from a raw symmetric adjacency whose diagonal may already
/// carry collapsed-edge weight (multilevel use).
CsrMatrix BuildFlowMatrixFromAdjacency(const CsrMatrix& adj,
                                       Scalar self_loop_scale = 1.0,
                                       int num_threads = 1);

/// \brief Runs up to `iterations` R-MCL iterations starting from flow `m`.
/// Returns the final flow matrix. Expansion, inflation and pruning are
/// fused row-by-row, so memory stays O(nnz(M) + n). With
/// options.num_threads != 1 the loop runs row-parallel in two passes
/// (per-worker row buffers, prefix-summed row pointers, parallel copy-out)
/// with workspaces reused across iterations; row results are
/// order-independent, so the output is bit-identical to the sequential
/// path.
Result<CsrMatrix> RmclIterate(CsrMatrix m, const CsrMatrix& mg,
                              const RmclOptions& options, int iterations);

/// Interprets a converged flow matrix: each vertex joins its attractor
/// (row argmax); overlapping attractor chains merge via union-find.
Clustering FlowToClustering(const CsrMatrix& m);

/// Single-level R-MCL: BuildFlowMatrix + iterate to convergence + extract.
Result<Clustering> Rmcl(const UGraph& g, const RmclOptions& options = {});

/// \brief Single-level R-MCL warm-started from a previous converged flow.
///
/// Intended for streamed updates: after a small edge delta, the previous
/// flow matrix is still near the fixed point for most rows, so far fewer
/// iterations are needed than from scratch. The seed flow M0 keeps
/// `previous_flow`'s rows everywhere except `touched_rows` (sorted, unique,
/// in range — typically the affected-row set of the incremental
/// symmetrizer), which are re-seeded from the fresh graph matrix M_G so
/// structural changes are not anchored to stale attractors.
///
/// `previous_flow` must be n x n for the current graph (warm starts are
/// only valid while the vertex set is unchanged). Runs up to `iterations`
/// R-MCL iterations; when `final_flow` is non-null the converged flow is
/// moved into it for the next warm start. Quality matches a from-scratch
/// run near convergence, but labels are not guaranteed byte-identical —
/// see docs/DYNAMIC.md for the caveats.
Result<Clustering> RmclWarmStart(const UGraph& g,
                                 const CsrMatrix& previous_flow,
                                 std::span<const Index> touched_rows,
                                 const RmclOptions& options, int iterations,
                                 CsrMatrix* final_flow = nullptr);

}  // namespace dgc
