// Shared spectral-clustering machinery: normalized-adjacency embeddings of
// symmetric similarity matrices (Shi-Malik / Ng-Jordan-Weiss style),
// consumed by the BestWCut and Zhou directed-spectral baselines.
#pragma once

#include <cstdint>

#include "graph/clustering.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "util/result.h"

namespace dgc {

struct SpectralOptions {
  Index k = 8;
  /// Eigen-solver subspace cap (0 = auto).
  int max_subspace = 0;
  /// k-means restarts on the embedding.
  int kmeans_restarts = 3;
  uint64_t seed = 31;
};

/// \brief Embeds vertices with the top-k eigenvectors of
/// D^{-1/2} W D^{-1/2} (equivalently the bottom of the normalized
/// Laplacian), row-normalizes, and returns the n x k embedding.
Result<DenseMatrix> NormalizedSpectralEmbedding(const CsrMatrix& w,
                                                const SpectralOptions& options);

/// Embedding + k-means: classic normalized spectral clustering of a
/// symmetric non-negative matrix.
Result<Clustering> SpectralClusterSymmetric(const CsrMatrix& w,
                                            const SpectralOptions& options);

}  // namespace dgc
