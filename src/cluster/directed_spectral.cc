#include "cluster/directed_spectral.h"

#include <cmath>

#include "cluster/kmeans.h"
#include "linalg/lanczos.h"

namespace dgc {

Result<CsrMatrix> DirectedLaplacianKernel(const Digraph& g,
                                          const PageRankOptions& pagerank) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  DGC_ASSIGN_OR_RETURN(PageRankResult pr, PageRank(g.adjacency(), pagerank));
  std::vector<Scalar> sqrt_pi(pr.pi.size());
  std::vector<Scalar> inv_sqrt_pi(pr.pi.size());
  for (size_t i = 0; i < pr.pi.size(); ++i) {
    sqrt_pi[i] = std::sqrt(pr.pi[i]);
    inv_sqrt_pi[i] = pr.pi[i] > 0.0 ? 1.0 / sqrt_pi[i] : 0.0;
  }
  // M = Π^{1/2} P Π^{-1/2}; S = (M + Mᵀ) / 2.
  CsrMatrix m = RowStochastic(g.adjacency());
  m.ScaleRows(sqrt_pi);
  m.ScaleCols(inv_sqrt_pi);
  DGC_ASSIGN_OR_RETURN(CsrMatrix s, CsrMatrix::Add(m, m.Transpose()));
  for (Scalar& v : s.mutable_values()) v *= 0.5;
  return s;
}

Result<Clustering> DirectedSpectralZhou(
    const Digraph& g, const DirectedSpectralOptions& options) {
  if (options.k < 1 || options.k > g.NumVertices()) {
    return Status::InvalidArgument("k out of range");
  }
  DGC_ASSIGN_OR_RETURN(CsrMatrix s,
                       DirectedLaplacianKernel(g, options.pagerank));
  LanczosOptions lanczos;
  lanczos.num_eigenpairs = options.k;
  lanczos.which = SpectrumEnd::kLargest;  // top of S = bottom of L = I - S
  lanczos.max_subspace = options.spectral.max_subspace;
  lanczos.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(EigenResult eigen, LanczosSymmetric(s, lanczos));

  const Index found = eigen.eigenvectors.cols();
  DenseMatrix embedding(g.NumVertices(), found);
  for (Index i = 0; i < g.NumVertices(); ++i) {
    Scalar norm = 0.0;
    for (Index j = 0; j < found; ++j) {
      const Scalar v = eigen.eigenvectors(i, j);
      embedding(i, j) = v;
      norm += v * v;
    }
    if (norm > 0.0) {
      const Scalar inv = 1.0 / std::sqrt(norm);
      for (Index j = 0; j < found; ++j) embedding(i, j) *= inv;
    }
  }
  KMeansOptions kmeans;
  kmeans.k = options.k;
  kmeans.restarts = options.spectral.kmeans_restarts;
  kmeans.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(KMeansResult result, KMeans(embedding, kmeans));
  return result.clustering;
}

}  // namespace dgc
