#include "cluster/merge_small.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace dgc {

Index MergeSmallClusters(const UGraph& g, Index min_size,
                         Clustering* clustering) {
  DGC_CHECK_EQ(clustering->NumVertices(), g.NumVertices());
  Index k = clustering->Compact();
  if (min_size <= 1 || k <= 1) return k;

  const int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    const std::vector<Index> sizes = clustering->ClusterSizes();
    // Total boundary weight from each small cluster to every neighbor
    // cluster, accumulated in one sweep.
    std::vector<std::unordered_map<Index, Scalar>> boundary(
        static_cast<size_t>(k));
    const CsrMatrix& adj = g.adjacency();
    for (Index u = 0; u < g.NumVertices(); ++u) {
      const Index cu = clustering->LabelOf(u);
      if (cu == Clustering::kUnassigned ||
          sizes[static_cast<size_t>(cu)] >= min_size) {
        continue;
      }
      auto cols = adj.RowCols(u);
      auto vals = adj.RowValues(u);
      for (size_t i = 0; i < cols.size(); ++i) {
        const Index cv = clustering->LabelOf(cols[i]);
        if (cv == Clustering::kUnassigned || cv == cu) continue;
        boundary[static_cast<size_t>(cu)][cv] += vals[i];
      }
    }
    // Merge each small cluster into its strongest neighbor. Process in
    // ascending size order so the smallest fragments are absorbed first;
    // union-find keeps chains consistent within the round.
    std::vector<Index> merge_into(static_cast<size_t>(k));
    std::iota(merge_into.begin(), merge_into.end(), 0);
    std::function<Index(Index)> find = [&](Index x) {
      while (merge_into[static_cast<size_t>(x)] != x) {
        merge_into[static_cast<size_t>(x)] =
            merge_into[static_cast<size_t>(
                merge_into[static_cast<size_t>(x)])];
        x = merge_into[static_cast<size_t>(x)];
      }
      return x;
    };
    std::vector<Index> order(static_cast<size_t>(k));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&sizes](Index a, Index b) {
      return sizes[static_cast<size_t>(a)] < sizes[static_cast<size_t>(b)];
    });
    bool merged_any = false;
    for (Index c : order) {
      if (sizes[static_cast<size_t>(c)] >= min_size) break;
      Index best = -1;
      Scalar best_weight = 0.0;
      for (const auto& [nbr, weight] : boundary[static_cast<size_t>(c)]) {
        if (find(nbr) == find(c)) continue;
        if (weight > best_weight) {
          best_weight = weight;
          best = nbr;
        }
      }
      if (best < 0) continue;  // isolated fragment, keep
      merge_into[static_cast<size_t>(find(c))] = find(best);
      merged_any = true;
    }
    if (!merged_any) break;
    for (Index v = 0; v < clustering->NumVertices(); ++v) {
      const Index label = clustering->LabelOf(v);
      if (label != Clustering::kUnassigned) {
        clustering->Assign(v, find(label));
      }
    }
    k = clustering->Compact();
    if (k <= 1) break;
  }
  return k;
}

}  // namespace dgc
