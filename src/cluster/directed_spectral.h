// Directed spectral clustering with the random-walk Laplacian of Zhou,
// Huang & Scholkopf (ICML 2005) / Chung (2005), Eq. 5 of the paper:
//   L = I - (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2.
// The paper reports this method "did not finish execution on any of our
// datasets"; we include it as a runnable baseline for completeness.
#pragma once

#include "cluster/spectral.h"
#include "graph/clustering.h"
#include "graph/digraph.h"
#include "linalg/power_iteration.h"
#include "util/result.h"

namespace dgc {

struct DirectedSpectralOptions {
  Index k = 16;
  SpectralOptions spectral;
  PageRankOptions pagerank;
  uint64_t seed = 41;
};

/// \brief Clusters the digraph with the bottom-k eigenvectors of the
/// directed Laplacian (equivalently the top-k of its symmetric kernel)
/// followed by k-means on the row-normalized embedding.
Result<Clustering> DirectedSpectralZhou(
    const Digraph& g, const DirectedSpectralOptions& options = {});

/// The symmetric kernel S = (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2
/// used above; exposed for tests (its eigenstructure defines N cut_dir).
Result<CsrMatrix> DirectedLaplacianKernel(const Digraph& g,
                                          const PageRankOptions& pagerank = {});

}  // namespace dgc
