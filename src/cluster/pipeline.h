// The paper's two-stage framework (Figure 2): symmetrize the directed
// graph, then cluster the resulting undirected graph with a pluggable
// algorithm. This is the top-level convenience API most examples and
// benchmark harnesses use.
#pragma once

#include <string_view>

#include "cluster/graclus.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "core/symmetrize.h"
#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// Stage-2 clustering algorithm selector.
enum class ClusterAlgorithm {
  kMlrMcl,
  kMetis,
  kGraclus,
};

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm);

struct PipelineOptions {
  SymmetrizationMethod method = SymmetrizationMethod::kDegreeDiscounted;
  SymmetrizationOptions symmetrization;
  ClusterAlgorithm algorithm = ClusterAlgorithm::kMlrMcl;
  /// Options for whichever stage-2 algorithm is selected.
  MlrMclOptions mlr_mcl;
  MetisOptions metis;
  GraclusOptions graclus;
  /// Row reordering for the similarity products (linalg/reorder.h). When
  /// != kNone it overrides symmetrization.reorder, mirroring num_threads.
  /// The permutation lives entirely inside the similarity products — it is
  /// undone before the two product triangles are summed — so the pipeline
  /// output is bit-identical for every setting (the golden tests pin this).
  ReorderMethod reorder = ReorderMethod::kNone;
  /// Convenience thread count for the whole pipeline. When != 1 it
  /// overrides symmetrization.num_threads and mlr_mcl.rmcl.num_threads
  /// (0 = one thread per hardware core). The default 1 leaves the
  /// per-stage settings untouched and preserves the paper's
  /// single-threaded timing semantics. Clustering results are
  /// bit-identical for every setting.
  int num_threads = 1;

  /// Optional observability sink (obs/metrics.h). When non-null the
  /// pipeline records a span tree covering both stages — symmetrization
  /// nnz/prune counters, kernel spans, per-iteration MLR-MCL stats — which
  /// obs/report.h can serialize to JSON. The pointer is propagated to every
  /// per-stage options struct (overriding their own `metrics` fields, like
  /// num_threads). Null — the default — disables all instrumentation at
  /// zero cost.
  MetricsRegistry* metrics = nullptr;

  /// Resource limits for the whole run (util/budget.h). When any limit is
  /// set and `cancel` is null, the pipeline arms an internal CancelToken
  /// with this budget at entry and threads it through both stages; an
  /// exceeded budget aborts within one ParallelFor chunk and the pipeline
  /// returns Status(kDeadlineExceeded / kResourceExhausted). When `metrics`
  /// is attached, the spans recorded up to the abort remain in the registry,
  /// so the run report still shows where time went (the partial span tree).
  /// An unlimited budget — the default — adds zero overhead.
  ///
  /// Memory semantics since the out-of-core path (docs/OUT_OF_CORE.md):
  /// `max_memory_bytes` is copied into the symmetrization stage, whose
  /// fused similarity products *adapt* — they degrade to budget-sized
  /// row tiles with a disk spool instead of aborting — while every other
  /// charge keeps the abort semantics above. Tiled runs are bit-identical
  /// to unbudgeted runs.
  ResourceBudget budget;

  /// Directory for out-of-core spill files (empty = system temp
  /// directory). Copied into symmetrization.spill_dir, mirroring
  /// num_threads/metrics.
  std::string spill_dir;

  /// Optional caller-owned cancellation token. When non-null it is used
  /// as-is (the caller is responsible for arming it; `budget` is ignored)
  /// and propagated to every stage, which allows one token to govern
  /// several pipeline runs or to be tripped externally via Cancel().
  CancelToken* cancel = nullptr;
};

struct PipelineResult {
  UGraph symmetrized;
  Clustering clustering;
  Index num_clusters = 0;
  double symmetrize_seconds = 0.0;
  double cluster_seconds = 0.0;
};

/// Runs stage 1 + stage 2 and reports per-stage wall-clock times (the
/// quantities plotted in Figures 6b, 8 and 9).
Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options);

/// Stage 2 only: clusters an already-symmetrized graph.
Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options);

/// \brief Stage 2 over a symmetrized graph produced earlier (and possibly
/// elsewhere): the cache-hit entry point used by `dgc_serve`
/// (docs/SERVING.md) when a content-addressed cache lookup supplies the
/// stage-1 output.
///
/// Records the same top-level "pipeline" span as SymmetrizeAndCluster so
/// run reports from cold and cached runs share one shape, but with
/// symmetrize="cached" stamped on it instead of a "symmetrize" child span
/// — the absence of that child is how reports (and the serve tests) prove
/// the SpGEMM was skipped. Budget/cancellation semantics are identical to
/// SymmetrizeAndCluster.
///
/// The returned result's `symmetrized` member is left empty and
/// `symmetrize_seconds` is 0: callers on this path already hold the graph
/// (typically via a shared cache entry), and copying it per request would
/// defeat the cache.
Result<PipelineResult> ClusterPresymmetrized(const UGraph& g,
                                             const PipelineOptions& options);

}  // namespace dgc
