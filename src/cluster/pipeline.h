// The paper's two-stage framework (Figure 2): symmetrize the directed
// graph, then cluster the resulting undirected graph with a pluggable
// algorithm. This is the top-level convenience API most examples and
// benchmark harnesses use.
#pragma once

#include <string_view>

#include "cluster/graclus.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "core/symmetrize.h"
#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// Stage-2 clustering algorithm selector.
enum class ClusterAlgorithm {
  kMlrMcl,
  kMetis,
  kGraclus,
};

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm);

struct PipelineOptions {
  SymmetrizationMethod method = SymmetrizationMethod::kDegreeDiscounted;
  SymmetrizationOptions symmetrization;
  ClusterAlgorithm algorithm = ClusterAlgorithm::kMlrMcl;
  /// Options for whichever stage-2 algorithm is selected.
  MlrMclOptions mlr_mcl;
  MetisOptions metis;
  GraclusOptions graclus;
  /// Convenience thread count for the whole pipeline. When != 1 it
  /// overrides symmetrization.num_threads and mlr_mcl.rmcl.num_threads
  /// (0 = one thread per hardware core). The default 1 leaves the
  /// per-stage settings untouched and preserves the paper's
  /// single-threaded timing semantics. Clustering results are
  /// bit-identical for every setting.
  int num_threads = 1;

  /// Optional observability sink (obs/metrics.h). When non-null the
  /// pipeline records a span tree covering both stages — symmetrization
  /// nnz/prune counters, kernel spans, per-iteration MLR-MCL stats — which
  /// obs/report.h can serialize to JSON. The pointer is propagated to every
  /// per-stage options struct (overriding their own `metrics` fields, like
  /// num_threads). Null — the default — disables all instrumentation at
  /// zero cost.
  MetricsRegistry* metrics = nullptr;
};

struct PipelineResult {
  UGraph symmetrized;
  Clustering clustering;
  Index num_clusters = 0;
  double symmetrize_seconds = 0.0;
  double cluster_seconds = 0.0;
};

/// Runs stage 1 + stage 2 and reports per-stage wall-clock times (the
/// quantities plotted in Figures 6b, 8 and 9).
Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options);

/// Stage 2 only: clusters an already-symmetrized graph.
Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options);

}  // namespace dgc
