// MLR-MCL: Multi-Level Regularized Markov CLustering
// (Satuluri-Parthasarathy, KDD 2009) — the paper's main stage-2 clusterer.
// The graph is coarsened by heavy-edge matching; R-MCL runs to convergence
// on the coarsest graph; the flow matrix is then projected level by level
// to the finer graphs, with a curtailed number of R-MCL iterations at each,
// which both speeds up convergence and regularizes the flow.
#pragma once

#include <cstdint>

#include "cluster/coarsen.h"
#include "cluster/mcl.h"
#include "cluster/merge_small.h"
#include "graph/clustering.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

struct MlrMclOptions {
  RmclOptions rmcl;
  /// Coarsening schedule.
  CoarsenOptions coarsen;
  /// R-MCL iterations on the coarsest graph.
  int coarsest_iterations = 40;
  /// Curtailed R-MCL iterations at each finer level.
  int iterations_per_level = 12;
  /// Extra iterations at the finest level (on top of iterations_per_level).
  int finest_extra_iterations = 8;
  /// Merge clusters smaller than this into their strongest neighbor after
  /// extraction (0 disables). Flow clustering of sparse graphs fragments
  /// into tiny attractor basins; this approximates MLR-MCL's balance
  /// mechanism.
  Index min_cluster_size = 0;
  uint64_t seed = 23;

  /// Optional observability sink (obs/metrics.h), propagated into the
  /// coarsening and R-MCL stages (overriding rmcl.metrics/coarsen.metrics,
  /// the way `seed` is propagated). When non-null MlrMcl records spans for
  /// coarsening, the coarsest solve and each refinement level; when null —
  /// the default — no instrumentation runs at all.
  MetricsRegistry* metrics = nullptr;

  /// Optional cooperative cancellation (util/budget.h), propagated into the
  /// R-MCL stage (overriding rmcl.cancel, like `metrics`) and polled
  /// between coarsening, projection and refinement stages; a tripped
  /// deadline/memory budget aborts with the token's status. Null — the
  /// default — adds no overhead.
  CancelToken* cancel = nullptr;
};

/// \brief Clusters g with MLR-MCL. The number of output clusters is
/// controlled indirectly via options.rmcl.inflation (Section 4.2 of the
/// paper): sweep the inflation to sweep cluster granularity.
///
/// When `final_flow` is non-null the converged finest-level flow matrix is
/// moved into it after label extraction, so callers can warm-start a later
/// run (RmclWarmStart) after an edge delta without redoing the multilevel
/// solve. Passing nullptr — the default — changes nothing.
Result<Clustering> MlrMcl(const UGraph& g, const MlrMclOptions& options = {},
                          CsrMatrix* final_flow = nullptr);

/// \brief Projects a coarse flow matrix to the finer level: fine vertex i
/// inherits its parent's flow row, with each coarse column's mass split
/// equally among that supernode's children. Rows remain stochastic.
/// Row-parallel (num_threads follows the 0 = hardware-concurrency
/// convention); output is bit-identical for every thread count.
Result<CsrMatrix> ProjectFlow(const CsrMatrix& coarse_flow,
                              const std::vector<Index>& to_coarser,
                              Index num_fine, int num_threads = 1);

}  // namespace dgc
