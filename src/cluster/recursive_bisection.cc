#include "cluster/recursive_bisection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "linalg/lanczos.h"
#include "util/logging.h"

namespace dgc {

namespace {

/// Extracts the subgraph induced by `vertices` with local indices.
CsrMatrix InducedSubgraph(const CsrMatrix& adj,
                          const std::vector<Index>& vertices,
                          std::vector<Index>& global_to_local) {
  for (size_t i = 0; i < vertices.size(); ++i) {
    global_to_local[static_cast<size_t>(vertices[i])] =
        static_cast<Index>(i);
  }
  std::vector<Triplet> triplets;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Index u = vertices[i];
    auto cols = adj.RowCols(u);
    auto vals = adj.RowValues(u);
    for (size_t e = 0; e < cols.size(); ++e) {
      const Index local = global_to_local[static_cast<size_t>(cols[e])];
      if (local < 0) continue;
      triplets.push_back(
          Triplet{static_cast<Index>(i), local, vals[e]});
    }
  }
  auto sub = CsrMatrix::FromTriplets(static_cast<Index>(vertices.size()),
                                     static_cast<Index>(vertices.size()),
                                     std::move(triplets));
  DGC_CHECK(sub.ok());
  // Reset the scratch mapping for the next call.
  for (Index v : vertices) global_to_local[static_cast<size_t>(v)] = -1;
  return std::move(sub).ValueOrDie();
}

}  // namespace

Result<std::vector<bool>> FiedlerBisect(const UGraph& g,
                                        const std::vector<Index>& vertices,
                                        uint64_t seed) {
  if (vertices.size() < 2) {
    return Status::InvalidArgument("cannot bisect fewer than 2 vertices");
  }
  static thread_local std::vector<Index> scratch;
  if (scratch.size() < static_cast<size_t>(g.NumVertices())) {
    scratch.assign(static_cast<size_t>(g.NumVertices()), -1);
  }
  CsrMatrix sub = InducedSubgraph(g.adjacency(), vertices, scratch);
  const Index n = sub.rows();

  // Normalized adjacency S = D^{-1/2} W D^{-1/2}; the Fiedler direction is
  // its second eigenvector.
  std::vector<Scalar> degree = sub.RowSums();
  std::vector<Scalar> inv_sqrt(degree.size());
  for (size_t i = 0; i < degree.size(); ++i) {
    inv_sqrt[i] = degree[i] > 0.0 ? 1.0 / std::sqrt(degree[i]) : 0.0;
  }
  CsrMatrix s = sub;
  s.ScaleRows(inv_sqrt);
  s.ScaleCols(inv_sqrt);
  LanczosOptions lanczos;
  lanczos.num_eigenpairs = 2;
  lanczos.which = SpectrumEnd::kLargest;
  lanczos.seed = seed;
  lanczos.max_subspace = std::min<int>(n, 80);
  DGC_ASSIGN_OR_RETURN(EigenResult eigen, LanczosSymmetric(s, lanczos));
  if (eigen.eigenvectors.cols() < 2) {
    return Status::NotConverged("no Fiedler direction found");
  }
  // Sweep the vertices in Fiedler order (degree-normalized), track the
  // 2-way Ncut incrementally, keep the best prefix.
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return eigen.eigenvectors(a, 1) * inv_sqrt[static_cast<size_t>(a)] <
           eigen.eigenvectors(b, 1) * inv_sqrt[static_cast<size_t>(b)];
  });
  Scalar total_volume = 0.0;
  for (Scalar d : degree) total_volume += d;
  std::vector<bool> side(static_cast<size_t>(n), false);
  Scalar cut = 0.0, vol = 0.0;
  Scalar best = std::numeric_limits<Scalar>::max();
  size_t best_prefix = 1;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    const Index u = order[i];
    side[static_cast<size_t>(u)] = true;
    auto cols = sub.RowCols(u);
    auto vals = sub.RowValues(u);
    Scalar to_inside = 0.0;
    for (size_t e = 0; e < cols.size(); ++e) {
      if (side[static_cast<size_t>(cols[e])]) to_inside += vals[e];
    }
    vol += degree[static_cast<size_t>(u)];
    cut += degree[static_cast<size_t>(u)] - 2.0 * to_inside;
    if (vol <= 0.0 || vol >= total_volume) continue;
    const Scalar ncut = cut / vol + cut / (total_volume - vol);
    if (ncut < best) {
      best = ncut;
      best_prefix = i + 1;
    }
  }
  std::vector<bool> result(static_cast<size_t>(n), false);
  for (size_t i = 0; i < best_prefix; ++i) {
    result[static_cast<size_t>(order[i])] = true;
  }
  return result;
}

Result<Clustering> RecursiveSpectralBisection(
    const UGraph& g, const RecursiveBisectionOptions& options) {
  const Index n = g.NumVertices();
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("k out of range");
  }
  // Priority queue of parts by size; always split the largest.
  std::vector<std::vector<Index>> parts;
  {
    std::vector<Index> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    parts.push_back(std::move(all));
  }
  uint64_t seed = options.seed;
  while (static_cast<Index>(parts.size()) < options.k) {
    // Largest splittable part.
    size_t target = parts.size();
    size_t target_size = static_cast<size_t>(options.min_part_size);
    for (size_t p = 0; p < parts.size(); ++p) {
      if (parts[p].size() > target_size) {
        target = p;
        target_size = parts[p].size();
      }
    }
    if (target == parts.size()) break;  // nothing splittable remains
    auto split = FiedlerBisect(g, parts[target], seed++);
    if (!split.ok()) break;
    std::vector<Index> side_a, side_b;
    for (size_t i = 0; i < parts[target].size(); ++i) {
      ((*split)[i] ? side_a : side_b).push_back(parts[target][i]);
    }
    if (side_a.empty() || side_b.empty()) break;  // degenerate split
    parts[target] = std::move(side_a);
    parts.push_back(std::move(side_b));
  }
  Clustering clustering(n);
  for (size_t p = 0; p < parts.size(); ++p) {
    for (Index v : parts[p]) {
      clustering.Assign(v, static_cast<Index>(p));
    }
  }
  return clustering;
}

}  // namespace dgc
