// Lloyd's k-means with k-means++ seeding on dense embedding rows — the
// final step of every spectral clustering baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/clustering.h"
#include "linalg/dense_matrix.h"
#include "util/result.h"

namespace dgc {

struct KMeansOptions {
  Index k = 8;
  int max_iterations = 50;
  /// Restarts; the assignment with the lowest within-cluster SSE wins.
  int restarts = 3;
  uint64_t seed = 29;
};

struct KMeansResult {
  Clustering clustering;
  double sse = 0.0;  ///< within-cluster sum of squared distances
  int iterations = 0;
};

/// \brief Clusters the rows of `points` into k groups. Empty clusters are
/// reseeded from the farthest point. Returns InvalidArgument if k < 1 or
/// k > rows.
Result<KMeansResult> KMeans(const DenseMatrix& points,
                            const KMeansOptions& options = {});

}  // namespace dgc
