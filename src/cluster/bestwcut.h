// BestWCut baseline: spectral minimization of the weighted-cut family of
// Meila and Pentney (SDM 2007), the paper's directed-clustering comparator
// (Section 4.2 / Figure 6).
//
// WCut (Eq. 4 of the paper) with row weights T and transition weights T'
// equals the generalized normalized cut of the symmetric matrix
//   H = Diag(t') A + Aᵀ Diag(t')
// with vertex volumes T. Our implementation relaxes that cut spectrally
// (eigenvectors of T^{-1/2} H T^{-1/2} + k-means) for each candidate
// weighting — uniform, in-degree, and PageRank — and returns the clustering
// with the lowest achieved WCut objective. This follows the spirit of
// "best" WCut (choosing the most favorable weighting) while keeping the
// defining property the paper measures: eigenvector computations make it
// orders of magnitude slower than the multilevel methods.
#pragma once

#include <string>

#include "cluster/spectral.h"
#include "graph/clustering.h"
#include "graph/digraph.h"
#include "linalg/power_iteration.h"
#include "util/result.h"

namespace dgc {

/// Candidate transition-weight vectors T'.
enum class WCutWeighting {
  kUniform,   ///< T' = 1: recovers Ncut of A+Aᵀ
  kInDegree,  ///< T' = in-degree
  kPageRank,  ///< T' = stationary distribution (≈ N Cut_dir of Eq. 3)
};

std::string_view WCutWeightingName(WCutWeighting w);

struct BestWCutOptions {
  Index k = 16;
  SpectralOptions spectral;
  PageRankOptions pagerank;
  uint64_t seed = 37;
};

struct BestWCutResult {
  Clustering clustering;
  WCutWeighting chosen = WCutWeighting::kUniform;
  double wcut = 0.0;  ///< achieved k-way WCut objective
};

/// \brief The k-way WCut objective of a clustering under weighting `w`:
/// sum over clusters S of cut_H(S, S̄) / vol_T(S).
Result<double> WCutObjective(const Digraph& g, const Clustering& clustering,
                             WCutWeighting w,
                             const PageRankOptions& pagerank = {});

/// Runs the spectral WCut pipeline for every candidate weighting and keeps
/// the best. Returns InvalidArgument for k out of range.
Result<BestWCutResult> BestWCut(const Digraph& g,
                                const BestWCutOptions& options = {});

}  // namespace dgc
