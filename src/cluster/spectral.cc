#include "cluster/spectral.h"

#include <cmath>

#include "cluster/kmeans.h"
#include "linalg/lanczos.h"
#include "linalg/vector_ops.h"

namespace dgc {

Result<DenseMatrix> NormalizedSpectralEmbedding(
    const CsrMatrix& w, const SpectralOptions& options) {
  if (w.rows() != w.cols()) {
    return Status::InvalidArgument("spectral embedding needs a square matrix");
  }
  if (options.k < 1 || options.k > w.rows()) {
    return Status::InvalidArgument("k out of range");
  }
  // S = D^{-1/2} W D^{-1/2}; its top eigenvectors are the bottom of the
  // normalized Laplacian I - S.
  CsrMatrix s = w;
  std::vector<Scalar> degree = w.RowSums();
  std::vector<Scalar> inv_sqrt = InversePower(degree, 0.5);
  s.ScaleRows(inv_sqrt);
  s.ScaleCols(inv_sqrt);

  LanczosOptions lanczos;
  lanczos.num_eigenpairs = options.k;
  lanczos.which = SpectrumEnd::kLargest;
  lanczos.max_subspace = options.max_subspace;
  lanczos.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(EigenResult eigen, LanczosSymmetric(s, lanczos));

  const Index found = eigen.eigenvectors.cols();
  DenseMatrix embedding(w.rows(), found);
  for (Index i = 0; i < w.rows(); ++i) {
    Scalar norm = 0.0;
    for (Index j = 0; j < found; ++j) {
      const Scalar v = eigen.eigenvectors(i, j);
      embedding(i, j) = v;
      norm += v * v;
    }
    // Row-normalize (Ng-Jordan-Weiss); zero rows (isolated vertices) stay 0.
    if (norm > 0.0) {
      const Scalar inv = 1.0 / std::sqrt(norm);
      for (Index j = 0; j < found; ++j) embedding(i, j) *= inv;
    }
  }
  return embedding;
}

Result<Clustering> SpectralClusterSymmetric(const CsrMatrix& w,
                                            const SpectralOptions& options) {
  DGC_ASSIGN_OR_RETURN(DenseMatrix embedding,
                       NormalizedSpectralEmbedding(w, options));
  KMeansOptions kmeans;
  kmeans.k = options.k;
  kmeans.restarts = options.kmeans_restarts;
  kmeans.seed = options.seed;
  DGC_ASSIGN_OR_RETURN(KMeansResult result, KMeans(embedding, kmeans));
  return result.clustering;
}

}  // namespace dgc
