#include "cluster/initial_partition.h"

#include <algorithm>
#include <deque>

namespace dgc {

std::vector<Index> GreedyGrowPartition(const GraphLevel& level, Index k,
                                       double cap, Rng& rng) {
  // Sequential greedy graph growing (Karypis-Kumar): fill one part at a
  // time by BFS from a random unassigned seed until the part reaches its
  // weight quota, then move on. Growing parts one after another keeps
  // locally dense regions intact, which parallel multi-source growth
  // tends to interleave and split.
  const Index n = level.adj.rows();
  std::vector<Index> labels(static_cast<size_t>(n), -1);
  std::vector<Scalar> part_weight(static_cast<size_t>(k), 0.0);

  Scalar total_weight = 0.0;
  for (Scalar w : level.node_weight) total_weight += w;
  const double quota = total_weight / static_cast<double>(k);

  // Random visiting order supplies fresh seeds cheaply.
  std::vector<Index> seed_order(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) seed_order[static_cast<size_t>(i)] = i;
  rng.Shuffle(seed_order);
  size_t next_seed = 0;

  std::deque<Index> queue;
  for (Index part = 0; part < k; ++part) {
    // The last part absorbs whatever quota rounding left behind.
    const double limit = part == k - 1 ? cap : std::min(cap, quota);
    queue.clear();
    while (part_weight[static_cast<size_t>(part)] < limit) {
      Index u = -1;
      if (!queue.empty()) {
        u = queue.front();
        queue.pop_front();
        if (labels[static_cast<size_t>(u)] != -1) continue;
      } else {
        while (next_seed < seed_order.size() &&
               labels[seed_order[next_seed]] != -1) {
          ++next_seed;
        }
        if (next_seed >= seed_order.size()) break;  // everything assigned
        u = seed_order[next_seed++];
      }
      if (part_weight[static_cast<size_t>(part)] +
              level.node_weight[static_cast<size_t>(u)] >
          cap) {
        continue;
      }
      labels[static_cast<size_t>(u)] = part;
      part_weight[static_cast<size_t>(part)] +=
          level.node_weight[static_cast<size_t>(u)];
      for (Index v : level.adj.RowCols(u)) {
        if (labels[static_cast<size_t>(v)] == -1) queue.push_back(v);
      }
    }
  }
  // Leftovers (capped out everywhere): lightest part wins.
  for (Index v = 0; v < n; ++v) {
    if (labels[static_cast<size_t>(v)] != -1) continue;
    const Index lightest = static_cast<Index>(
        std::min_element(part_weight.begin(), part_weight.end()) -
        part_weight.begin());
    labels[static_cast<size_t>(v)] = lightest;
    part_weight[static_cast<size_t>(lightest)] +=
        level.node_weight[static_cast<size_t>(v)];
  }
  // Guarantee every part is non-empty (k <= n): empty parts steal one
  // vertex from the currently largest part.
  std::vector<Index> part_size(static_cast<size_t>(k), 0);
  for (Index v = 0; v < n; ++v) {
    ++part_size[static_cast<size_t>(labels[static_cast<size_t>(v)])];
  }
  for (Index part = 0; part < k; ++part) {
    if (part_size[static_cast<size_t>(part)] > 0) continue;
    const Index donor = static_cast<Index>(
        std::max_element(part_size.begin(), part_size.end()) -
        part_size.begin());
    for (Index v = 0; v < n; ++v) {
      if (labels[static_cast<size_t>(v)] == donor) {
        labels[static_cast<size_t>(v)] = part;
        --part_size[static_cast<size_t>(donor)];
        ++part_size[static_cast<size_t>(part)];
        break;
      }
    }
  }
  return labels;
}

}  // namespace dgc
