#include "cluster/semi_supervised.h"

#include <algorithm>
#include <cmath>

#include "cluster/directed_spectral.h"
#include "linalg/dense_matrix.h"

namespace dgc {

Result<SemiSupervisedResult> PropagateLabelsDirected(
    const Digraph& g, const std::vector<std::pair<Index, Index>>& seeds,
    Index num_classes, const SemiSupervisedOptions& options) {
  const Index n = g.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (seeds.empty()) return Status::InvalidArgument("no seed labels");
  if (num_classes < 1) {
    return Status::InvalidArgument("num_classes must be >= 1");
  }
  if (options.mu <= 0.0 || options.mu >= 1.0) {
    return Status::InvalidArgument("mu must be in (0, 1)");
  }
  for (const auto& [v, c] : seeds) {
    if (v < 0 || v >= n) return Status::OutOfRange("seed vertex out of range");
    if (c < 0 || c >= num_classes) {
      return Status::OutOfRange("seed class out of range");
    }
  }

  // Symmetric kernel S of the directed Laplacian (Eq. 5); spectral radius
  // <= 1, so the iteration F <- mu S F + (1-mu) Y contracts.
  DGC_ASSIGN_OR_RETURN(CsrMatrix s,
                       DirectedLaplacianKernel(g, options.pagerank));

  DenseMatrix y(n, num_classes, 0.0);
  for (const auto& [v, c] : seeds) y(v, c) = 1.0;
  DenseMatrix f = y;
  DenseMatrix next(n, num_classes, 0.0);
  std::vector<Scalar> column(static_cast<size_t>(n));
  std::vector<Scalar> product(static_cast<size_t>(n));

  SemiSupervisedResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Scalar delta = 0.0;
    for (Index c = 0; c < num_classes; ++c) {
      for (Index v = 0; v < n; ++v) column[static_cast<size_t>(v)] = f(v, c);
      s.Multiply(column, product);
      for (Index v = 0; v < n; ++v) {
        const Scalar value = options.mu * product[static_cast<size_t>(v)] +
                             (1.0 - options.mu) * y(v, c);
        delta += std::abs(value - f(v, c));
        next(v, c) = value;
      }
    }
    std::swap(f, next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.labels = Clustering(n);
  for (Index v = 0; v < n; ++v) {
    Index best = Clustering::kUnassigned;
    Scalar best_score = 0.0;  // strictly positive evidence required
    for (Index c = 0; c < num_classes; ++c) {
      if (f(v, c) > best_score) {
        best_score = f(v, c);
        best = c;
      }
    }
    result.labels.Assign(v, best);
  }
  return result;
}

}  // namespace dgc
