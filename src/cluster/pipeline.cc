#include "cluster/pipeline.h"

#include "util/timer.h"

namespace dgc {

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return "MLR-MCL";
    case ClusterAlgorithm::kMetis:
      return "Metis";
    case ClusterAlgorithm::kGraclus:
      return "Graclus";
  }
  return "?";
}

namespace {

/// Applies the pipeline-wide num_threads override to the per-stage options
/// (no-op at the default of 1, so explicit per-stage settings survive).
PipelineOptions ResolveThreadOverrides(const PipelineOptions& options) {
  PipelineOptions resolved = options;
  if (options.num_threads != 1) {
    resolved.symmetrization.num_threads = options.num_threads;
    resolved.mlr_mcl.rmcl.num_threads = options.num_threads;
  }
  return resolved;
}

}  // namespace

Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options) {
  const PipelineOptions resolved = ResolveThreadOverrides(options);
  switch (resolved.algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return MlrMcl(g, resolved.mlr_mcl);
    case ClusterAlgorithm::kMetis:
      return MetisPartition(g, resolved.metis);
    case ClusterAlgorithm::kGraclus:
      return GraclusCluster(g, resolved.graclus);
  }
  return Status::InvalidArgument("unknown clustering algorithm");
}

Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options) {
  const PipelineOptions resolved = ResolveThreadOverrides(options);
  PipelineResult result;
  WallTimer timer;
  DGC_ASSIGN_OR_RETURN(
      result.symmetrized,
      Symmetrize(g, resolved.method, resolved.symmetrization));
  result.symmetrize_seconds = timer.ElapsedSeconds();

  timer.Restart();
  DGC_ASSIGN_OR_RETURN(result.clustering,
                       ClusterUGraph(result.symmetrized, resolved));
  result.cluster_seconds = timer.ElapsedSeconds();
  result.num_clusters = result.clustering.NumClusters();
  return result;
}

}  // namespace dgc
