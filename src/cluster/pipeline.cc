#include "cluster/pipeline.h"

#include "obs/span.h"
#include "util/timer.h"

namespace dgc {

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return "MLR-MCL";
    case ClusterAlgorithm::kMetis:
      return "Metis";
    case ClusterAlgorithm::kGraclus:
      return "Graclus";
  }
  return "?";
}

namespace {

/// Applies the pipeline-wide num_threads and metrics overrides to the
/// per-stage options (num_threads is a no-op at the default of 1, so
/// explicit per-stage settings survive; a non-null pipeline metrics sink
/// always wins, so one registry collects the whole run).
PipelineOptions ResolveOverrides(const PipelineOptions& options) {
  PipelineOptions resolved = options;
  if (options.num_threads != 1) {
    resolved.symmetrization.num_threads = options.num_threads;
    resolved.mlr_mcl.rmcl.num_threads = options.num_threads;
  }
  if (options.metrics != nullptr) {
    resolved.symmetrization.metrics = options.metrics;
    resolved.mlr_mcl.metrics = options.metrics;
  }
  return resolved;
}

Result<Clustering> ClusterResolved(const UGraph& g,
                                   const PipelineOptions& resolved) {
  StageSpan span(resolved.metrics, "cluster");
  span.Metric("algorithm", ClusterAlgorithmName(resolved.algorithm));
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_nnz", g.adjacency().nnz());
  Result<Clustering> clustering = [&]() -> Result<Clustering> {
    switch (resolved.algorithm) {
      case ClusterAlgorithm::kMlrMcl:
        return MlrMcl(g, resolved.mlr_mcl);
      case ClusterAlgorithm::kMetis:
        return MetisPartition(g, resolved.metis);
      case ClusterAlgorithm::kGraclus:
        return GraclusCluster(g, resolved.graclus);
    }
    return Status::InvalidArgument("unknown clustering algorithm");
  }();
  if (clustering.ok()) {
    span.Metric("num_clusters", clustering->NumClusters());
  }
  return clustering;
}

}  // namespace

Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options) {
  return ClusterResolved(g, ResolveOverrides(options));
}

Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options) {
  const PipelineOptions resolved = ResolveOverrides(options);
  StageSpan pipeline_span(resolved.metrics, "pipeline");
  pipeline_span.Metric("method", SymmetrizationMethodName(resolved.method));
  pipeline_span.Metric("algorithm",
                       ClusterAlgorithmName(resolved.algorithm));
  pipeline_span.Metric("input_vertices", g.NumVertices());
  pipeline_span.Metric("input_arcs", g.NumEdges());

  PipelineResult result;
  WallTimer timer;
  DGC_ASSIGN_OR_RETURN(
      result.symmetrized,
      Symmetrize(g, resolved.method, resolved.symmetrization));
  result.symmetrize_seconds = timer.ElapsedSeconds();

  timer.Restart();
  DGC_ASSIGN_OR_RETURN(result.clustering,
                       ClusterResolved(result.symmetrized, resolved));
  result.cluster_seconds = timer.ElapsedSeconds();
  result.num_clusters = result.clustering.NumClusters();
  pipeline_span.Metric("num_clusters", result.num_clusters);
  return result;
}

}  // namespace dgc
