#include "cluster/pipeline.h"

#include "obs/span.h"
#include "util/timer.h"

namespace dgc {

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return "MLR-MCL";
    case ClusterAlgorithm::kMetis:
      return "Metis";
    case ClusterAlgorithm::kGraclus:
      return "Graclus";
  }
  return "?";
}

namespace {

/// Applies the pipeline-wide num_threads and metrics overrides to the
/// per-stage options (num_threads is a no-op at the default of 1, so
/// explicit per-stage settings survive; a non-null pipeline metrics sink
/// always wins, so one registry collects the whole run).
PipelineOptions ResolveOverrides(const PipelineOptions& options) {
  PipelineOptions resolved = options;
  if (options.num_threads != 1) {
    resolved.symmetrization.num_threads = options.num_threads;
    resolved.mlr_mcl.rmcl.num_threads = options.num_threads;
  }
  if (options.reorder != ReorderMethod::kNone) {
    resolved.symmetrization.reorder = options.reorder;
  }
  if (options.metrics != nullptr) {
    resolved.symmetrization.metrics = options.metrics;
    resolved.mlr_mcl.metrics = options.metrics;
  }
  if (resolved.cancel != nullptr) {
    resolved.symmetrization.cancel = resolved.cancel;
    resolved.mlr_mcl.cancel = resolved.cancel;
  }
  // Out-of-core plumbing: the budget's memory cap drives the
  // symmetrization's auto-tiling decision (and its budget→tile-size
  // derivation); the spill directory rides along. Explicit per-stage
  // settings survive, mirroring num_threads.
  if (options.budget.max_memory_bytes > 0 &&
      resolved.symmetrization.max_memory_bytes == 0) {
    resolved.symmetrization.max_memory_bytes = options.budget.max_memory_bytes;
  }
  if (!options.spill_dir.empty() &&
      resolved.symmetrization.spill_dir.empty()) {
    resolved.symmetrization.spill_dir = options.spill_dir;
  }
  return resolved;
}

/// Picks the token governing this run: the caller's token when provided
/// (used as-is), else `local` armed with the pipeline budget when one is
/// set, else none. `local` must outlive the run.
CancelToken* ResolveCancel(const PipelineOptions& options,
                           CancelToken* local) {
  if (options.cancel != nullptr) return options.cancel;
  if (options.budget.unlimited()) return nullptr;
  local->Arm(options.budget);
  return local;
}

/// Stamps the terminal status onto the stage span so a budget-aborted run's
/// partial span tree records why it ended.
void RecordStatus(StageSpan& span, const Status& status) {
  if (!span.live()) return;
  span.Metric("status", StatusCodeToString(status.code()));
}

Result<Clustering> ClusterResolved(const UGraph& g,
                                   const PipelineOptions& resolved) {
  StageSpan span(resolved.metrics, "cluster");
  span.Metric("algorithm", ClusterAlgorithmName(resolved.algorithm));
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_nnz", g.adjacency().nnz());
  Result<Clustering> clustering = [&]() -> Result<Clustering> {
    switch (resolved.algorithm) {
      case ClusterAlgorithm::kMlrMcl:
        return MlrMcl(g, resolved.mlr_mcl);
      case ClusterAlgorithm::kMetis:
        return MetisPartition(g, resolved.metis);
      case ClusterAlgorithm::kGraclus:
        return GraclusCluster(g, resolved.graclus);
    }
    return Status::InvalidArgument("unknown clustering algorithm");
  }();
  if (clustering.ok()) {
    span.Metric("num_clusters", clustering->NumClusters());
  }
  return clustering;
}

}  // namespace

Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options) {
  CancelToken local_token;
  PipelineOptions armed = options;
  armed.cancel = ResolveCancel(options, &local_token);
  return ClusterResolved(g, ResolveOverrides(armed));
}

Result<PipelineResult> ClusterPresymmetrized(const UGraph& g,
                                             const PipelineOptions& options) {
  CancelToken local_token;
  PipelineOptions armed = options;
  armed.cancel = ResolveCancel(options, &local_token);
  const PipelineOptions resolved = ResolveOverrides(armed);

  StageSpan pipeline_span(resolved.metrics, "pipeline");
  pipeline_span.Metric("method", SymmetrizationMethodName(resolved.method));
  pipeline_span.Metric("algorithm",
                       ClusterAlgorithmName(resolved.algorithm));
  pipeline_span.Metric("input_vertices", g.NumVertices());
  pipeline_span.Metric("input_arcs", g.NumArcs());
  // The cold path gets a "symmetrize" child span from stage 1; this path
  // deliberately has none — the annotation says why, and reports prove the
  // SpGEMM never ran.
  pipeline_span.Metric("symmetrize", "cached");

  PipelineResult result;
  WallTimer timer;
  Result<Clustering> clustering = ClusterResolved(g, resolved);
  if (!clustering.ok()) {
    RecordStatus(pipeline_span, clustering.status());
    return clustering.status();
  }
  result.clustering = std::move(*clustering);
  result.cluster_seconds = timer.ElapsedSeconds();
  result.num_clusters = result.clustering.NumClusters();
  pipeline_span.Metric("num_clusters", result.num_clusters);
  RecordStatus(pipeline_span, Status::OK());
  return result;
}

Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options) {
  // Budget governance: arm a run-local token unless the caller supplied
  // one. The token pointer rides the same override path as metrics, so
  // every stage down to the SpGEMM row loops polls the same trip state.
  CancelToken local_token;
  PipelineOptions armed = options;
  armed.cancel = ResolveCancel(options, &local_token);
  const PipelineOptions resolved = ResolveOverrides(armed);

  StageSpan pipeline_span(resolved.metrics, "pipeline");
  pipeline_span.Metric("method", SymmetrizationMethodName(resolved.method));
  pipeline_span.Metric("algorithm",
                       ClusterAlgorithmName(resolved.algorithm));
  pipeline_span.Metric("input_vertices", g.NumVertices());
  pipeline_span.Metric("input_arcs", g.NumEdges());

  PipelineResult result;
  WallTimer timer;
  Result<UGraph> symmetrized =
      Symmetrize(g, resolved.method, resolved.symmetrization);
  if (!symmetrized.ok()) {
    // The spans already recorded under `metrics` stay in the registry: a
    // deadline/memory abort still yields the partial span tree in the run
    // report, with the terminal status stamped on the pipeline span.
    RecordStatus(pipeline_span, symmetrized.status());
    return symmetrized.status();
  }
  result.symmetrized = std::move(*symmetrized);
  result.symmetrize_seconds = timer.ElapsedSeconds();

  timer.Restart();
  Result<Clustering> clustering = ClusterResolved(result.symmetrized,
                                                  resolved);
  if (!clustering.ok()) {
    RecordStatus(pipeline_span, clustering.status());
    return clustering.status();
  }
  result.clustering = std::move(*clustering);
  result.cluster_seconds = timer.ElapsedSeconds();
  result.num_clusters = result.clustering.NumClusters();
  pipeline_span.Metric("num_clusters", result.num_clusters);
  RecordStatus(pipeline_span, Status::OK());
  return result;
}

}  // namespace dgc
