#include "cluster/pipeline.h"

#include "util/timer.h"

namespace dgc {

std::string_view ClusterAlgorithmName(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return "MLR-MCL";
    case ClusterAlgorithm::kMetis:
      return "Metis";
    case ClusterAlgorithm::kGraclus:
      return "Graclus";
  }
  return "?";
}

Result<Clustering> ClusterUGraph(const UGraph& g,
                                 const PipelineOptions& options) {
  switch (options.algorithm) {
    case ClusterAlgorithm::kMlrMcl:
      return MlrMcl(g, options.mlr_mcl);
    case ClusterAlgorithm::kMetis:
      return MetisPartition(g, options.metis);
    case ClusterAlgorithm::kGraclus:
      return GraclusCluster(g, options.graclus);
  }
  return Status::InvalidArgument("unknown clustering algorithm");
}

Result<PipelineResult> SymmetrizeAndCluster(const Digraph& g,
                                            const PipelineOptions& options) {
  PipelineResult result;
  WallTimer timer;
  DGC_ASSIGN_OR_RETURN(result.symmetrized,
                       Symmetrize(g, options.method, options.symmetrization));
  result.symmetrize_seconds = timer.ElapsedSeconds();

  timer.Restart();
  DGC_ASSIGN_OR_RETURN(result.clustering,
                       ClusterUGraph(result.symmetrized, options));
  result.cluster_seconds = timer.ElapsedSeconds();
  result.num_clusters = result.clustering.NumClusters();
  return result;
}

}  // namespace dgc
