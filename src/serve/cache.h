// Content-addressed symmetrization cache for dgc_serve (docs/SERVING.md).
//
// Stage 1 (the symmetrization SpGEMM) is the expensive, parameter-stable
// half of the pipeline: sweeping MLR-MCL inflation/size parameters over one
// graph re-runs an identical symmetrization every time. The cache keys the
// stage-1 *output* by the stage-1 *inputs* — a content hash of the loaded
// CSR adjacency plus every option that affects the symmetrized result —
// so a repeat request skips straight to stage 2 via ClusterPresymmetrized.
//
// Keying by graph content (not path) means a rewritten input file can never
// serve a stale entry, and two paths to byte-identical graphs share one.
// Entries are immutable shared_ptr<const UGraph>: a hit pins the graph for
// the duration of the request, so LRU eviction under a concurrent request
// merely unlinks the entry — the memory is reclaimed when the last request
// drops its pin. Capacity is a byte budget over the CSR payload sizes, not
// an entry count, because graphs span orders of magnitude.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"

namespace dgc {

class MetricsRegistry;

/// FNV-1a 64-bit over the matrix shape and the raw bytes of the three CSR
/// arrays. Deterministic across runs/platforms of the same endianness
/// (the cache is process-local, so cross-platform stability is not
/// load-bearing — cross-*request* stability is).
uint64_t GraphContentHash(const CsrMatrix& m);

/// Heap footprint of a cached symmetrized graph: the three CSR arrays.
/// (Bookkeeping overhead — the key string, list/map nodes — is noise at
/// graph scale and deliberately not charged.)
int64_t UGraphCacheBytes(const UGraph& g);

/// \brief Thread-safe LRU cache of symmetrized graphs under a byte budget.
///
/// Counters recorded into the (optional, server-lifetime) registry:
///   serve.cache.hits / serve.cache.misses / serve.cache.evictions
/// plus a `serve.cache.bytes` gauge tracking resident payload bytes.
class SymmetrizationCache {
 public:
  /// `max_bytes` caps resident payload bytes; 0 disables insertion (every
  /// lookup misses, Insert is a no-op) without disabling the serve path.
  /// `metrics` may be null; it must outlive the cache when set.
  explicit SymmetrizationCache(int64_t max_bytes,
                               MetricsRegistry* metrics = nullptr);

  SymmetrizationCache(const SymmetrizationCache&) = delete;
  SymmetrizationCache& operator=(const SymmetrizationCache&) = delete;

  /// Returns the entry for `key` and marks it most-recently-used, or null
  /// on a miss. The returned pointer pins the graph independently of any
  /// later eviction.
  std::shared_ptr<const UGraph> Lookup(const std::string& key);

  /// Inserts (or replaces) the entry for `key`, then evicts
  /// least-recently-used entries until resident bytes fit the budget. An
  /// entry larger than the whole budget is not cached at all.
  void Insert(const std::string& key, std::shared_ptr<const UGraph> graph);

  /// Drops the entry for `key` if present (used by cache mode "refresh"
  /// before recomputing). Not counted as an eviction.
  void Erase(const std::string& key);

  int64_t resident_bytes() const;
  int64_t num_entries() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const UGraph> graph;
    int64_t bytes = 0;
  };

  /// Must be called with `mutex_` held.
  void EvictToFitLocked();
  void SetBytesGaugeLocked();

  const int64_t max_bytes_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mutex_;
  /// MRU at front, LRU at back.
  std::list<Entry> lru_;
  /// Keyed index into the list. std::map (not unordered_map) keeps
  /// iteration deterministic under the nd-unordered-iteration analyzer
  /// rule; the cache holds few entries, so the log factor is irrelevant.
  std::map<std::string, std::list<Entry>::iterator> index_;
  int64_t resident_bytes_ = 0;
};

}  // namespace dgc
