#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>

#include "cluster/mcl.h"
#include "cluster/mlr_mcl.h"
#include "dynamic/incremental.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/budget.h"

namespace dgc {

namespace {

/// Cap on concurrently retained incremental sessions; least-recently-used
/// sessions beyond it are dropped (the next delta against that
/// configuration restarts from the on-disk graph — correct, just cold).
constexpr size_t kMaxDeltaSessions = 16;

std::string DigestHex(uint64_t digest) {
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(hex);
}

/// Poll interval for the accept/read loops: long enough to cost nothing,
/// short enough that a shutdown request drains idle connections promptly.
constexpr int kPollMillis = 100;

/// Writes all of `line` plus a terminating newline. MSG_NOSIGNAL: a client
/// that disconnected mid-response must surface as an error return, not a
/// process-killing SIGPIPE.
bool SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::DeltaSession {
  IncrementalSymmetrizer sym;
  /// Chained digest: starts at the base graph's content hash, extended by
  /// DeltaBatchDigest per applied batch. Identifies the evolved graph state
  /// in cache keys (`<base key>;d=<16 hex>`).
  uint64_t chain = 0;
  /// Previous converged flow matrix (empty until the first clustering on
  /// this session completes); seeds RmclWarmStart on later deltas.
  CsrMatrix flow;
  bool has_flow = false;
  uint64_t last_used = 0;

  DeltaSession(IncrementalSymmetrizer s, uint64_t c)
      : sym(std::move(s)), chain(c) {}
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_max_bytes, options_.metrics) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
}

std::string Server::HandleRequestLine(std::string_view line) {
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("serve.requests", 1);
  }
  Result<ServeRequest> parsed =
      ParseServeRequest(line, options_.limits.json);
  if (!parsed.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("serve.errors", 1);
    }
    // The id is unknown when the line would not even parse; "" tells the
    // client to correlate by order.
    return BuildErrorResponse("", parsed.status());
  }
  if (parsed->shutdown) {
    stop_.store(true, std::memory_order_release);
    return BuildShutdownResponse(parsed->id);
  }
  if (parsed->apply_delta) return HandleDeltaRequest(*parsed);
  return HandleClusterRequest(*parsed);
}

int64_t Server::num_delta_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return static_cast<int64_t>(sessions_.size());
}

std::string Server::HandleClusterRequest(const ServeRequest& req) {
  MetricsRegistry req_metrics;
  std::string disposition(CacheModeName(req.cache));
  Status failure = Status::OK();
  Index num_clusters = 0;
  std::vector<Index> labels;

  // Inner scope: the spans must close (fixing their wall/cpu times) before
  // the registry serializes into the response envelope.
  {
    StageSpan request_span(&req_metrics, "serve.request");
    request_span.Metric("op", "cluster");
    request_span.Metric("cache_mode", CacheModeName(req.cache));

    // Arm the budget before the graph loads: a request's deadline covers
    // the whole request, not just the pipeline. The token is handed to the
    // pipeline as a caller-owned `cancel`, which disables its internal
    // arming (cluster/pipeline.h).
    CancelToken token;
    token.Arm(ResourceBudget{req.deadline_ms, req.max_memory_bytes});
    PipelineOptions options = PipelineOptionsForRequest(req);
    options.metrics = &req_metrics;
    if (req.deadline_ms > 0 || req.max_memory_bytes > 0) {
      options.cancel = &token;
    }

    Result<Digraph> graph = [&]() -> Result<Digraph> {
      StageSpan load_span(&req_metrics, "serve.load_graph");
      load_span.Metric("path", req.graph_path);
      Result<Digraph> g = ReadEdgeList(req.graph_path, 0, options_.limits.io);
      if (g.ok()) {
        load_span.Metric("vertices", g->NumVertices());
        load_span.Metric("arcs", g->NumEdges());
        if (options.cancel != nullptr && options.cancel->Expired()) {
          return options.cancel->status();
        }
      }
      return g;
    }();
    if (!graph.ok()) {
      failure = graph.status();
      request_span.Metric("status", StatusCodeToString(failure.code()));
    } else {
      Result<Clustering> clustering = [&]() -> Result<Clustering> {
        if (req.cache == CacheMode::kBypass) {
          Result<PipelineResult> r = SymmetrizeAndCluster(*graph, options);
          if (!r.ok()) return r.status();
          return std::move(r->clustering);
        }
        const std::string key =
            CacheKeyForRequest(req, GraphContentHash(graph->adjacency()));
        if (req.cache == CacheMode::kRefresh) {
          cache_.Erase(key);
        }
        std::shared_ptr<const UGraph> cached = cache_.Lookup(key);
        if (cached != nullptr) {
          disposition = "hit";
          Result<PipelineResult> r = ClusterPresymmetrized(*cached, options);
          if (!r.ok()) return r.status();
          return std::move(r->clustering);
        }
        if (req.cache == CacheMode::kUse) disposition = "miss";
        Result<PipelineResult> r = SymmetrizeAndCluster(*graph, options);
        if (!r.ok()) return r.status();
        cache_.Insert(key, std::make_shared<const UGraph>(
                               std::move(r->symmetrized)));
        return std::move(r->clustering);
      }();
      if (!clustering.ok()) {
        failure = clustering.status();
      } else {
        num_clusters = clustering->NumClusters();
        if (req.labels) labels = clustering->labels();
      }
      request_span.Metric("status", StatusCodeToString(failure.code()));
      request_span.Metric("cache", disposition);
    }
  }

  if (!failure.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("serve.errors", 1);
    }
    return BuildErrorResponse(req.id, failure, &req_metrics,
                              req.redact_timings);
  }
  ServeResponseData data;
  data.id = req.id;
  data.cache = disposition;
  data.num_clusters = num_clusters;
  data.labels = req.labels ? &labels : nullptr;
  data.metrics = &req_metrics;
  data.redact_timings = req.redact_timings;
  return BuildSuccessResponse(data);
}

std::string Server::HandleDeltaRequest(const ServeRequest& req) {
  MetricsRegistry req_metrics;
  Status failure = Status::OK();
  Index num_clusters = 0;
  std::vector<Index> labels;
  int64_t rows_recomputed = -1;
  int64_t rows_total = -1;
  std::string digest_hex;
  std::string disposition = "chain";

  {
    StageSpan request_span(&req_metrics, "serve.request");
    request_span.Metric("op", "apply_delta");

    Result<Digraph> graph = [&]() -> Result<Digraph> {
      StageSpan load_span(&req_metrics, "serve.load_graph");
      load_span.Metric("path", req.graph_path);
      Result<Digraph> g = ReadEdgeList(req.graph_path, 0, options_.limits.io);
      if (g.ok()) {
        load_span.Metric("vertices", g->NumVertices());
        load_span.Metric("arcs", g->NumEdges());
      }
      return g;
    }();
    if (!graph.ok()) {
      failure = graph.status();
    } else {
      PipelineOptions options = PipelineOptionsForRequest(req);
      options.metrics = &req_metrics;
      SymmetrizationOptions sym_options = options.symmetrization;
      if (options.num_threads != 1) {
        sym_options.num_threads = options.num_threads;
      }
      const uint64_t base_hash = GraphContentHash(graph->adjacency());
      const std::string base_key = CacheKeyForRequest(req, base_hash);

      // Delta requests serialize server-wide (see sessions_mutex_).
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      DeltaSession* session = nullptr;
      auto it = sessions_.find(base_key);
      if (it != sessions_.end()) {
        session = it->second.get();
      } else {
        Result<IncrementalSymmetrizer> created = IncrementalSymmetrizer::Create(
            *graph, req.method, sym_options);
        if (!created.ok()) {
          failure = created.status();
        } else {
          auto owned =
              std::make_unique<DeltaSession>(std::move(*created), base_hash);
          session = owned.get();
          sessions_.emplace(base_key, std::move(owned));
          // Evict the least-recently-used other session beyond the cap.
          if (sessions_.size() > kMaxDeltaSessions) {
            auto victim = sessions_.end();
            for (auto s = sessions_.begin(); s != sessions_.end(); ++s) {
              if (s->second.get() == session) continue;
              if (victim == sessions_.end() ||
                  s->second->last_used < victim->second->last_used) {
                victim = s;
              }
            }
            if (victim != sessions_.end()) sessions_.erase(victim);
          }
        }
      }

      if (session != nullptr) {
        session->last_used = ++session_seq_;
        {
          StageSpan delta_span(&req_metrics, "delta");
          delta_span.Metric("inserts",
                            static_cast<int64_t>(req.delta.inserts.size()));
          delta_span.Metric("deletes",
                            static_cast<int64_t>(req.delta.deletes.size()));
          failure = session->sym.ApplyDelta(req.delta);
          if (failure.ok()) {
            session->chain = DeltaBatchDigest(session->chain, req.delta);
            const IncrementalStats stats = session->sym.last_stats();
            rows_recomputed = stats.rows_recomputed;
            rows_total = stats.rows_total;
            delta_span.Metric("rows_recomputed", rows_recomputed);
            delta_span.Metric("rows_total", rows_total);
          }
        }
        if (failure.ok()) {
          if (options_.metrics != nullptr) {
            options_.metrics->AddCounter("serve.incremental.rows_recomputed",
                                         rows_recomputed);
            options_.metrics->AddCounter("serve.incremental.rows_total",
                                         rows_total);
          }
          digest_hex = DigestHex(session->chain);
          const std::string chained_key = base_key + ";d=" + digest_hex;
          cache_.Insert(chained_key, std::make_shared<const UGraph>(
                                         session->sym.symmetrized()));

          Result<Clustering> clustering = [&]() -> Result<Clustering> {
            if (req.algorithm != ClusterAlgorithm::kMlrMcl) {
              Result<PipelineResult> r = ClusterPresymmetrized(
                  session->sym.symmetrized(), options);
              if (!r.ok()) return r.status();
              return std::move(r->clustering);
            }
            MlrMclOptions mlr = options.mlr_mcl;
            mlr.metrics = &req_metrics;
            if (options.num_threads != 1) {
              mlr.rmcl.num_threads = options.num_threads;
            }
            if (session->has_flow) {
              disposition = "chain+warm";
              RmclOptions rmcl = mlr.rmcl;
              rmcl.metrics = &req_metrics;
              const int iterations =
                  mlr.iterations_per_level + mlr.finest_extra_iterations;
              return RmclWarmStart(session->sym.symmetrized(), session->flow,
                                   session->sym.last_affected_rows(), rmcl,
                                   iterations, &session->flow);
            }
            Result<Clustering> c =
                MlrMcl(session->sym.symmetrized(), mlr, &session->flow);
            if (c.ok()) session->has_flow = true;
            return c;
          }();
          if (!clustering.ok()) {
            failure = clustering.status();
          } else {
            num_clusters = clustering->NumClusters();
            if (req.labels) labels = clustering->labels();
          }
        }
      }
      request_span.Metric("status", StatusCodeToString(failure.code()));
      request_span.Metric("cache", disposition);
    }
  }

  if (!failure.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("serve.errors", 1);
    }
    return BuildErrorResponse(req.id, failure, &req_metrics,
                              req.redact_timings);
  }
  ServeResponseData data;
  data.id = req.id;
  data.cache = disposition;
  data.num_clusters = num_clusters;
  data.labels = req.labels ? &labels : nullptr;
  data.metrics = &req_metrics;
  data.redact_timings = req.redact_timings;
  data.rows_recomputed = rows_recomputed;
  data.rows_total = rows_total;
  data.delta_digest = digest_hex;
  return BuildSuccessResponse(data);
}

Status Server::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive noise
    out << HandleRequestLine(line) << "\n";
    out.flush();
    if (shutdown_requested()) break;
  }
  return Status::OK();
}

Result<int> Server::StartTcp() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("StartTcp called twice");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(err));
  }
  listen_fd_ = fd;
  return static_cast<int>(ntohs(bound.sin_port));
}

Status Server::RunTcp() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("RunTcp before StartTcp");
  }
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("accept: ") + std::strerror(errno));
    }
    connection_threads_.emplace_back(
        [this, conn]() { ServeConnection(conn); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  connection_threads_.clear();
  return Status::OK();
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown_requested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or hard error: the client is gone
    }
    buffer.append(chunk, static_cast<size_t>(n));
    // A line that exceeds the request byte cap can never parse, and
    // without its newline we cannot resync the stream — answer once and
    // hang up.
    if (static_cast<int64_t>(buffer.size()) > options_.limits.json.max_bytes &&
        buffer.find('\n') == std::string::npos) {
      SendLine(fd, BuildErrorResponse(
                       "", Status::OutOfRange(
                               "request line exceeds max_bytes=" +
                               std::to_string(options_.limits.json.max_bytes))));
      break;
    }
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        if (!SendLine(fd, HandleRequestLine(line))) {
          open = false;
          break;
        }
        if (shutdown_requested()) {
          open = false;
          break;
        }
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace dgc
