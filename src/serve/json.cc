#include "serve/json.h"

#include <charconv>
#include <cmath>
#include <string>
#include <system_error>
#include <utility>

namespace dgc {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent scanner over one document. Positions are byte
/// offsets; diagnostics render them as `request:1:<column>` to match the
/// file:line:column shape of the graph/io.h readers (a request is always
/// one line, so the line number is pinned at 1).
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    DGC_RETURN_IF_ERROR(ParseValue(/*depth=*/0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing junk after the JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("request:1:" + std::to_string(pos_ + 1) +
                                   ": " + message);
  }
  Status Overflow(const std::string& message) const {
    return Status::OutOfRange("request:1:" + std::to_string(pos_ + 1) + ": " +
                              message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status Expect(char c) {
    if (AtEnd() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > limits_.max_depth) {
      return Overflow("nesting deeper than max_depth=" +
                      std::to_string(limits_.max_depth));
    }
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        DGC_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        DGC_RETURN_IF_ERROR(ExpectLiteral("true"));
        *out = JsonValue(true);
        return Status::OK();
      case 'f':
        DGC_RETURN_IF_ERROR(ExpectLiteral("false"));
        *out = JsonValue(false);
        return Status::OK();
      case 'n':
        DGC_RETURN_IF_ERROR(ExpectLiteral("null"));
        *out = JsonValue();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("unrecognized token");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(int depth, JsonValue* out) {
    DGC_RETURN_IF_ERROR(Expect('{'));
    JsonValue::Object members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = JsonValue(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      DGC_RETURN_IF_ERROR(ParseString(&key));
      for (const auto& [k, unused] : members) {
        if (k == key) return Error("duplicate key '" + key + "'");
      }
      SkipWhitespace();
      DGC_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      JsonValue value;
      DGC_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      if (static_cast<int64_t>(members.size()) > limits_.max_members) {
        return Overflow("object larger than max_members=" +
                        std::to_string(limits_.max_members));
      }
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue(std::move(members));
    return Status::OK();
  }

  Status ParseArray(int depth, JsonValue* out) {
    DGC_RETURN_IF_ERROR(Expect('['));
    JsonValue::Array elements;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = JsonValue(std::move(elements));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      DGC_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      elements.push_back(std::move(value));
      if (static_cast<int64_t>(elements.size()) > limits_.max_members) {
        return Overflow("array larger than max_members=" +
                        std::to_string(limits_.max_members));
      }
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue(std::move(elements));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (AtEnd() || Peek() != '"') return Error("expected a string");
    ++pos_;
    out->clear();
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (static_cast<int64_t>(out->size()) >= limits_.max_string_bytes) {
        return Overflow("string longer than max_string_bytes=" +
                        std::to_string(limits_.max_string_bytes));
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) break;
        switch (text_[pos_]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            // Only the ASCII subset U+0000..U+007F is accepted: the protocol
            // carries paths and identifiers, and a partial UTF-16 decoder
            // (surrogates, multi-byte encoding) is attack surface with no
            // payload that needs it. Non-ASCII goes through raw UTF-8.
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            const char* first = text_.data() + pos_ + 1;
            const auto r = std::from_chars(first, first + 4, code, 16);
            if (r.ec != std::errc() || r.ptr != first + 4) {
              return Error("malformed \\u escape");
            }
            if (code > 0x7f) {
              return Error("\\u escape beyond ASCII; send raw UTF-8 instead");
            }
            out->push_back(static_cast<char>(code));
            pos_ += 4;
            break;
          }
          default:
            return Error("unknown escape sequence");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd()) {
      const char c = Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("unrecognized token");
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto r = std::from_chars(first, last, value);
    if (r.ec != std::errc() || r.ptr != last || !std::isfinite(value)) {
      pos_ = start;
      return Error("malformed number");
    }
    *out = JsonValue(value);
    return Status::OK();
  }

  std::string_view text_;
  const JsonLimits& limits_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, const JsonLimits& limits) {
  if (static_cast<int64_t>(text.size()) > limits.max_bytes) {
    return Status::OutOfRange(
        "request:1:1: document larger than max_bytes=" +
        std::to_string(limits.max_bytes));
  }
  return Parser(text, limits).Parse();
}

}  // namespace dgc
