// The dgc_serve wire protocol (docs/SERVING.md): newline-delimited JSON,
// one request object in, one response object out, per line.
//
// Request schema `dgc.serve.request.v1`: a flat object selecting the
// pipeline configuration (symmetrization method + parameters, clustering
// algorithm + parameters, per-request ResourceBudget, cache mode). Fields
// are strictly validated — an unknown key or a wrong type is an error, not
// a warning — because a typo'd "thresold" that silently falls back to the
// default would corrupt a parameter sweep without any signal.
//
// Response schema `dgc.serve.response.v1`: a single-line envelope that
// embeds the PR 4 run report (`dgc.run_report.v1`, compact form) under the
// "report" key, so every serve response carries the same span tree /
// counters artifact the CLI tools write. Failures — malformed requests,
// missing graphs, tripped budgets — produce an envelope with ok=false and
// the Status code/message; the connection stays usable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/pipeline.h"
#include "dynamic/delta.h"
#include "graph/io.h"
#include "serve/json.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

inline constexpr std::string_view kServeRequestSchema = "dgc.serve.request.v1";
inline constexpr std::string_view kServeResponseSchema =
    "dgc.serve.response.v1";

/// How a request interacts with the symmetrization cache.
enum class CacheMode {
  kUse,      ///< lookup; on miss compute and insert (the default)
  kBypass,   ///< neither lookup nor insert (for A/B timing and tests)
  kRefresh,  ///< drop any existing entry, recompute, insert
};

std::string_view CacheModeName(CacheMode mode);

/// \brief Bounds enforced on every request before any work happens.
struct ServeLimits {
  /// JSON document limits (serve/json.h); json.max_bytes caps the request
  /// line itself.
  JsonLimits json;
  /// Graph-file limits (graph/io.h) applied when a request loads a graph.
  IoLimits io;
};

/// \brief One parsed `dgc.serve.request.v1` request.
struct ServeRequest {
  /// Client correlation id, echoed verbatim in the response ("" = absent).
  std::string id;
  /// True for {"op": "shutdown"}: the server finishes in-flight requests,
  /// acknowledges, and stops accepting.
  bool shutdown = false;

  /// True for {"op": "apply_delta"}: stream an edge batch into the
  /// incremental session addressed by the stage-1 fields, recompute only
  /// the affected rows of the symmetrization, and re-cluster warm-started
  /// from the previous flow (docs/DYNAMIC.md).
  bool apply_delta = false;
  /// The edge batch for op=apply_delta: "inserts" is an array of [u, v] or
  /// [u, v, w] arrays, "deletes" an array of [u, v] arrays.
  EdgeDeltaBatch delta;

  /// Path to the directed edge-list input (required unless shutdown).
  std::string graph_path;

  // --- stage 1: symmetrization (cache-key fields) ---
  SymmetrizationMethod method = SymmetrizationMethod::kDegreeDiscounted;
  double alpha = 0.5;  ///< out-degree discount exponent (degree-discounted)
  double beta = 0.5;   ///< in-degree discount exponent (degree-discounted)
  double threshold = 0.0;  ///< prune threshold (Section 3.5)
  bool self_loops = false;
  ReorderMethod reorder = ReorderMethod::kNone;

  // --- stage 2: clustering (not in the cache key) ---
  ClusterAlgorithm algorithm = ClusterAlgorithm::kMlrMcl;
  double inflation = 2.0;  ///< MLR-MCL granularity knob
  Index clusters = 16;     ///< k for Metis / Graclus

  // --- per-request execution controls ---
  int threads = 1;
  int64_t deadline_ms = 0;         ///< 0 = no deadline
  int64_t max_memory_bytes = 0;    ///< 0 = no memory cap
  CacheMode cache = CacheMode::kUse;
  bool labels = false;          ///< include per-vertex labels in the response
  bool redact_timings = false;  ///< redact the embedded run report's timings
};

/// Parses and strictly validates one request line. Errors carry the
/// bounded-parser `request:1:<column>:` diagnostics for syntax and plain
/// field-level messages for semantic violations.
Result<ServeRequest> ParseServeRequest(std::string_view line,
                                       const JsonLimits& limits = {});

/// Builds PipelineOptions for `req` (metrics/cancel left null — the server
/// attaches per-request instances).
PipelineOptions PipelineOptionsForRequest(const ServeRequest& req);

/// Canonical cache key: the graph content hash plus every stage-1 field.
/// Doubles render via shortest-round-trip to_chars, so two requests hit the
/// same entry exactly when their stage-1 configurations are bit-equal.
std::string CacheKeyForRequest(const ServeRequest& req, uint64_t graph_hash);

/// \brief Everything a success envelope serializes.
struct ServeResponseData {
  std::string id;
  /// What the cache did: "hit", "miss", "bypass" or "refresh".
  std::string cache;
  Index num_clusters = 0;
  /// Per-vertex labels; null unless the request asked for them.
  const std::vector<Index>* labels = nullptr;
  /// Per-request registry whose run report embeds under "report".
  const MetricsRegistry* metrics = nullptr;
  bool redact_timings = false;
  /// Incremental counters for op=apply_delta responses; a negative
  /// rows_total (the default) omits both fields from the envelope.
  int64_t rows_recomputed = -1;
  int64_t rows_total = -1;
  /// Chained delta digest (16 hex chars) for op=apply_delta; empty omits.
  std::string delta_digest;
};

/// Single-line `dgc.serve.response.v1` success envelope (no trailing
/// newline; the transport appends it).
std::string BuildSuccessResponse(const ServeResponseData& data);

/// Single-line acknowledgement for {"op": "shutdown"} (ok=true,
/// shutdown=true, no pipeline fields).
std::string BuildShutdownResponse(const std::string& id);

/// Single-line failure envelope carrying the Status code and message. When
/// `metrics` is non-null (a request that failed mid-pipeline, e.g. a budget
/// abort) the partial run report embeds under "report" so the caller can
/// see where the run stopped.
std::string BuildErrorResponse(const std::string& id, const Status& status,
                               const MetricsRegistry* metrics = nullptr,
                               bool redact_timings = false);

}  // namespace dgc
