#include "serve/request.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "obs/json_writer.h"
#include "obs/report.h"
#include "util/logging.h"

namespace dgc {

std::string_view CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kUse:
      return "use";
    case CacheMode::kBypass:
      return "bypass";
    case CacheMode::kRefresh:
      return "refresh";
  }
  return "?";
}

namespace {

Status FieldError(std::string_view key, std::string_view what) {
  return Status::InvalidArgument("request field \"" + std::string(key) +
                                 "\": " + std::string(what));
}

Status ExpectString(std::string_view key, const JsonValue& v,
                    std::string* out) {
  if (!v.is_string()) return FieldError(key, "expected a string");
  *out = v.AsString();
  return Status::OK();
}

Status ExpectBool(std::string_view key, const JsonValue& v, bool* out) {
  if (!v.is_bool()) return FieldError(key, "expected a boolean");
  *out = v.AsBool();
  return Status::OK();
}

Status ExpectNumber(std::string_view key, const JsonValue& v, double* out) {
  if (!v.is_number()) return FieldError(key, "expected a number");
  *out = v.AsNumber();
  return Status::OK();
}

/// An integer-valued number within [lo, hi]; JSON has no integer type, so
/// 2.5 threads must be rejected here rather than truncated.
Status ExpectInt(std::string_view key, const JsonValue& v, int64_t lo,
                 int64_t hi, int64_t* out) {
  if (!v.is_number()) return FieldError(key, "expected a number");
  const double d = v.AsNumber();
  if (d != std::floor(d)) return FieldError(key, "expected an integer");
  if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
    return FieldError(key, "out of range [" + std::to_string(lo) + ", " +
                               std::to_string(hi) + "]");
  }
  *out = static_cast<int64_t>(d);
  return Status::OK();
}

Result<ClusterAlgorithm> ParseClusterAlgorithm(std::string_view name) {
  if (name == "mlr-mcl" || name == "mlrmcl" || name == "mcl") {
    return ClusterAlgorithm::kMlrMcl;
  }
  if (name == "metis") return ClusterAlgorithm::kMetis;
  if (name == "graclus") return ClusterAlgorithm::kGraclus;
  return Status::NotFound("unknown clustering algorithm \"" +
                          std::string(name) +
                          "\" (want mlr-mcl, metis or graclus)");
}

Result<CacheMode> ParseCacheMode(std::string_view name) {
  if (name == "use") return CacheMode::kUse;
  if (name == "bypass") return CacheMode::kBypass;
  if (name == "refresh") return CacheMode::kRefresh;
  return Status::NotFound("unknown cache mode \"" + std::string(name) +
                          "\" (want use, bypass or refresh)");
}

/// One wire edge: [u, v] (deletes) or [u, v] / [u, v, w] (inserts). The
/// endpoints must be non-negative integers; range-against-the-graph checks
/// happen later in EdgeDeltaBatch::Validate, which knows the vertex count.
Status ParseWireEdge(std::string_view key, const JsonValue& v, bool insert,
                     EdgeDeltaBatch* out) {
  if (!v.is_array()) {
    return FieldError(key, "expected an array of [u, v] arrays");
  }
  const auto& tuple = v.AsArray();
  const size_t max_arity = insert ? 3 : 2;
  if (tuple.size() < 2 || tuple.size() > max_arity) {
    return FieldError(key, insert ? "each insert must be [u, v] or [u, v, w]"
                                  : "each delete must be [u, v]");
  }
  int64_t endpoints[2] = {0, 0};
  for (size_t i = 0; i < 2; ++i) {
    DGC_RETURN_IF_ERROR(ExpectInt(key, tuple[i], 0,
                                  std::numeric_limits<Index>::max(),
                                  &endpoints[i]));
  }
  if (insert) {
    Edge e;
    e.src = static_cast<Index>(endpoints[0]);
    e.dst = static_cast<Index>(endpoints[1]);
    if (tuple.size() == 3) {
      DGC_RETURN_IF_ERROR(ExpectNumber(key, tuple[2], &e.weight));
    }
    out->inserts.push_back(e);
  } else {
    out->deletes.push_back(EdgeKey{static_cast<Index>(endpoints[0]),
                                   static_cast<Index>(endpoints[1])});
  }
  return Status::OK();
}

Status ParseWireEdges(std::string_view key, const JsonValue& v, bool insert,
                      EdgeDeltaBatch* out) {
  if (!v.is_array()) {
    return FieldError(key, "expected an array of [u, v] arrays");
  }
  for (const JsonValue& e : v.AsArray()) {
    DGC_RETURN_IF_ERROR(ParseWireEdge(key, e, insert, out));
  }
  return Status::OK();
}

/// Appends a shortest-round-trip double rendering (the cache-key format;
/// must distinguish every distinct bit pattern).
void AppendDouble(std::string* out, double v) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  DGC_CHECK(r.ec == std::errc());
  out->append(buf, r.ptr);
}

/// Embeds the compact run report under a "report" key (caller emits the
/// preceding separator).
void EmbedReport(JsonWriter& w, const MetricsRegistry& metrics,
                 bool redact_timings) {
  RunReportOptions opts;
  opts.redact_timings = redact_timings;
  opts.compact = true;
  w.String("report");
  w.Raw(": ");
  w.Raw(RunReportToJson(metrics, opts));
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line,
                                       const JsonLimits& limits) {
  Result<JsonValue> doc = ParseJson(line, limits);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest req;
  std::string op = "cluster";
  for (const auto& [key, value] : doc->AsObject()) {
    if (key == "schema") {
      std::string schema;
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &schema));
      if (schema != kServeRequestSchema) {
        return FieldError(key, "unsupported schema \"" + schema +
                                   "\" (this server speaks " +
                                   std::string(kServeRequestSchema) + ")");
      }
    } else if (key == "id") {
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &req.id));
    } else if (key == "op") {
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &op));
      if (op != "cluster" && op != "shutdown" && op != "apply_delta") {
        return FieldError(key, "unknown op \"" + op +
                                   "\" (want cluster, apply_delta or "
                                   "shutdown)");
      }
    } else if (key == "inserts") {
      DGC_RETURN_IF_ERROR(
          ParseWireEdges(key, value, /*insert=*/true, &req.delta));
    } else if (key == "deletes") {
      DGC_RETURN_IF_ERROR(
          ParseWireEdges(key, value, /*insert=*/false, &req.delta));
    } else if (key == "graph") {
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &req.graph_path));
    } else if (key == "method") {
      std::string name;
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &name));
      Result<SymmetrizationMethod> m = ParseSymmetrizationMethod(name);
      if (!m.ok()) return FieldError(key, m.status().message());
      req.method = *m;
    } else if (key == "alpha") {
      DGC_RETURN_IF_ERROR(ExpectNumber(key, value, &req.alpha));
    } else if (key == "beta") {
      DGC_RETURN_IF_ERROR(ExpectNumber(key, value, &req.beta));
    } else if (key == "threshold") {
      DGC_RETURN_IF_ERROR(ExpectNumber(key, value, &req.threshold));
      if (req.threshold < 0.0) return FieldError(key, "must be >= 0");
    } else if (key == "self_loops") {
      DGC_RETURN_IF_ERROR(ExpectBool(key, value, &req.self_loops));
    } else if (key == "reorder") {
      std::string name;
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &name));
      Result<ReorderMethod> r = ParseReorderMethod(name);
      if (!r.ok()) return FieldError(key, r.status().message());
      req.reorder = *r;
    } else if (key == "algorithm") {
      std::string name;
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &name));
      Result<ClusterAlgorithm> a = ParseClusterAlgorithm(name);
      if (!a.ok()) return FieldError(key, a.status().message());
      req.algorithm = *a;
    } else if (key == "inflation") {
      DGC_RETURN_IF_ERROR(ExpectNumber(key, value, &req.inflation));
      if (!(req.inflation > 1.0)) return FieldError(key, "must be > 1");
    } else if (key == "clusters") {
      int64_t k = 0;
      DGC_RETURN_IF_ERROR(
          ExpectInt(key, value, 1, std::numeric_limits<Index>::max(), &k));
      req.clusters = static_cast<Index>(k);
    } else if (key == "threads") {
      int64_t t = 0;
      DGC_RETURN_IF_ERROR(ExpectInt(key, value, 0, 1024, &t));
      req.threads = static_cast<int>(t);
    } else if (key == "deadline_ms") {
      DGC_RETURN_IF_ERROR(ExpectInt(key, value, 0,
                                    std::numeric_limits<int64_t>::max() / 2,
                                    &req.deadline_ms));
    } else if (key == "max_memory_bytes") {
      DGC_RETURN_IF_ERROR(ExpectInt(key, value, 0,
                                    std::numeric_limits<int64_t>::max() / 2,
                                    &req.max_memory_bytes));
    } else if (key == "cache") {
      std::string name;
      DGC_RETURN_IF_ERROR(ExpectString(key, value, &name));
      Result<CacheMode> mode = ParseCacheMode(name);
      if (!mode.ok()) return FieldError(key, mode.status().message());
      req.cache = *mode;
    } else if (key == "labels") {
      DGC_RETURN_IF_ERROR(ExpectBool(key, value, &req.labels));
    } else if (key == "redact_timings") {
      DGC_RETURN_IF_ERROR(ExpectBool(key, value, &req.redact_timings));
    } else {
      // Strict: a misspelled field must fail loudly, not silently run with
      // the default (a sweep with "thresold" would be garbage-in).
      return Status::InvalidArgument("unknown request field \"" + key + "\"");
    }
  }

  req.shutdown = (op == "shutdown");
  req.apply_delta = (op == "apply_delta");
  if (!req.apply_delta && !req.delta.empty()) {
    return Status::InvalidArgument(
        "request fields \"inserts\"/\"deletes\": only valid for "
        "op=apply_delta");
  }
  if (!req.shutdown && req.graph_path.empty()) {
    return Status::InvalidArgument("request field \"graph\": required for op=" +
                                   op);
  }
  return req;
}

PipelineOptions PipelineOptionsForRequest(const ServeRequest& req) {
  PipelineOptions options;
  options.method = req.method;
  options.symmetrization.out_discount = DiscountSpec::Power(req.alpha);
  options.symmetrization.in_discount = DiscountSpec::Power(req.beta);
  options.symmetrization.prune_threshold = req.threshold;
  options.symmetrization.add_self_loops = req.self_loops;
  options.reorder = req.reorder;
  options.algorithm = req.algorithm;
  options.mlr_mcl.rmcl.inflation = req.inflation;
  options.metis.k = req.clusters;
  options.graclus.k = req.clusters;
  options.num_threads = req.threads;
  options.budget.deadline_ms = req.deadline_ms;
  options.budget.max_memory_bytes = req.max_memory_bytes;
  return options;
}

std::string CacheKeyForRequest(const ServeRequest& req, uint64_t graph_hash) {
  std::string key;
  key.reserve(96);
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(graph_hash));
  key += "g=";
  key += hex;
  key += ";m=";
  key += SymmetrizationMethodName(req.method);
  // Stage-2-irrelevant fields are deliberately absent; stage-1 fields that
  // some methods ignore (alpha/beta for A+Aᵀ) are deliberately present —
  // over-discrimination costs a rare duplicate entry, under-discrimination
  // would serve a wrong graph.
  key += ";a=";
  AppendDouble(&key, req.alpha);
  key += ";b=";
  AppendDouble(&key, req.beta);
  key += ";t=";
  AppendDouble(&key, req.threshold);
  key += ";sl=";
  key += req.self_loops ? '1' : '0';
  key += ";r=";
  key += ReorderMethodName(req.reorder);
  return key;
}

std::string BuildSuccessResponse(const ServeResponseData& data) {
  JsonWriter w(/*compact=*/true);
  w.Raw("{");
  w.String("schema");
  w.Raw(": ");
  w.String(kServeResponseSchema);
  w.Raw(", ");
  w.String("id");
  w.Raw(": ");
  w.String(data.id);
  w.Raw(", ");
  w.String("ok");
  w.Raw(": ");
  w.Bool(true);
  w.Raw(", ");
  w.String("status");
  w.Raw(": ");
  w.String("OK");
  w.Raw(", ");
  w.String("cache");
  w.Raw(": ");
  w.String(data.cache);
  w.Raw(", ");
  w.String("num_clusters");
  w.Raw(": ");
  w.Int(data.num_clusters);
  if (data.rows_total >= 0) {
    w.Raw(", ");
    w.String("rows_recomputed");
    w.Raw(": ");
    w.Int(data.rows_recomputed);
    w.Raw(", ");
    w.String("rows_total");
    w.Raw(": ");
    w.Int(data.rows_total);
  }
  if (!data.delta_digest.empty()) {
    w.Raw(", ");
    w.String("delta");
    w.Raw(": ");
    w.String(data.delta_digest);
  }
  if (data.labels != nullptr) {
    w.Raw(", ");
    w.String("labels");
    w.Raw(": [");
    for (size_t i = 0; i < data.labels->size(); ++i) {
      if (i > 0) w.Raw(", ");
      w.Int((*data.labels)[i]);
    }
    w.Raw("]");
  }
  if (data.metrics != nullptr) {
    w.Raw(", ");
    EmbedReport(w, *data.metrics, data.redact_timings);
  }
  w.Raw("}");
  return std::move(w).Take();
}

std::string BuildShutdownResponse(const std::string& id) {
  JsonWriter w(/*compact=*/true);
  w.Raw("{");
  w.String("schema");
  w.Raw(": ");
  w.String(kServeResponseSchema);
  w.Raw(", ");
  w.String("id");
  w.Raw(": ");
  w.String(id);
  w.Raw(", ");
  w.String("ok");
  w.Raw(": ");
  w.Bool(true);
  w.Raw(", ");
  w.String("status");
  w.Raw(": ");
  w.String("OK");
  w.Raw(", ");
  w.String("shutdown");
  w.Raw(": ");
  w.Bool(true);
  w.Raw("}");
  return std::move(w).Take();
}

std::string BuildErrorResponse(const std::string& id, const Status& status,
                               const MetricsRegistry* metrics,
                               bool redact_timings) {
  JsonWriter w(/*compact=*/true);
  w.Raw("{");
  w.String("schema");
  w.Raw(": ");
  w.String(kServeResponseSchema);
  w.Raw(", ");
  w.String("id");
  w.Raw(": ");
  w.String(id);
  w.Raw(", ");
  w.String("ok");
  w.Raw(": ");
  w.Bool(false);
  w.Raw(", ");
  w.String("status");
  w.Raw(": ");
  w.String(StatusCodeToString(status.code()));
  w.Raw(", ");
  w.String("error");
  w.Raw(": ");
  w.String(status.message());
  if (metrics != nullptr) {
    w.Raw(", ");
    EmbedReport(w, *metrics, redact_timings);
  }
  w.Raw("}");
  return std::move(w).Take();
}

}  // namespace dgc
