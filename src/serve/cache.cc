#include "serve/cache.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace dgc {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t FnvMixSpan(uint64_t h, std::span<const T> s) {
  return FnvMix(h, s.data(), s.size() * sizeof(T));
}

}  // namespace

uint64_t GraphContentHash(const CsrMatrix& m) {
  uint64_t h = kFnvOffset;
  const int64_t shape[3] = {m.rows(), m.cols(), m.nnz()};
  h = FnvMix(h, shape, sizeof(shape));
  h = FnvMixSpan(h, m.row_ptr());
  h = FnvMixSpan(h, m.col_idx());
  h = FnvMixSpan(h, m.values());
  return h;
}

int64_t UGraphCacheBytes(const UGraph& g) {
  const CsrMatrix& m = g.adjacency();
  return static_cast<int64_t>((m.rows() + 1) * sizeof(Offset)) +
         static_cast<int64_t>(m.nnz()) *
             static_cast<int64_t>(sizeof(Index) + sizeof(Scalar));
}

SymmetrizationCache::SymmetrizationCache(int64_t max_bytes,
                                         MetricsRegistry* metrics)
    : max_bytes_(max_bytes), metrics_(metrics) {}

std::shared_ptr<const UGraph> SymmetrizationCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (metrics_ != nullptr) metrics_->AddCounter("serve.cache.misses", 1);
    return nullptr;
  }
  // Move to MRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  if (metrics_ != nullptr) metrics_->AddCounter("serve.cache.hits", 1);
  return it->second->graph;
}

void SymmetrizationCache::Insert(const std::string& key,
                                 std::shared_ptr<const UGraph> graph) {
  if (graph == nullptr) return;
  const int64_t bytes = UGraphCacheBytes(*graph);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > max_bytes_) return;  // would evict everything and still not fit
  auto it = index_.find(key);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(graph), bytes});
  index_[key] = lru_.begin();
  resident_bytes_ += bytes;
  EvictToFitLocked();
  SetBytesGaugeLocked();
}

void SymmetrizationCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  resident_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  SetBytesGaugeLocked();
}

int64_t SymmetrizationCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

int64_t SymmetrizationCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(lru_.size());
}

void SymmetrizationCache::EvictToFitLocked() {
  while (resident_bytes_ > max_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    if (metrics_ != nullptr) metrics_->AddCounter("serve.cache.evictions", 1);
  }
}

void SymmetrizationCache::SetBytesGaugeLocked() {
  if (metrics_ != nullptr) {
    metrics_->SetGauge("serve.cache.bytes",
                       static_cast<double>(resident_bytes_));
  }
}

}  // namespace dgc
