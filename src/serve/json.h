// Bounded single-document JSON parser for the serve protocol
// (docs/SERVING.md). Follows the bounded-parser discipline of graph/io.h:
// every malformed case — bad escapes, trailing junk, duplicate keys,
// unterminated strings, numbers that do not round-trip — yields a clean
// Status carrying a `request:1:<column>:` diagnostic, never a crash or an
// unbounded allocation. JsonLimits bounds (document bytes, nesting depth,
// string length, container sizes) are enforced *during* the scan, before
// anything is allocated proportionally to attacker-controlled input.
//
// The dialect is deliberately small and strict (RFC 8259 minus the parts
// the protocol never uses): UTF-8 pass-through, no \uXXXX escapes beyond
// ASCII (rejected, not mangled), no comments, no trailing commas, one
// value per document. Object member order is preserved and duplicate keys
// are an error — a versioned request schema must not silently
// last-write-wins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.h"

namespace dgc {

/// \brief Hard caps enforced while scanning a JSON document.
///
/// The defaults fit the serve protocol (requests are small; responses are
/// built, not parsed). As with IoLimits, violations surface as
/// Status(kOutOfRange) anchored to the offending byte.
struct JsonLimits {
  /// Max document size in bytes.
  int64_t max_bytes = int64_t{1} << 20;
  /// Max container nesting depth.
  int max_depth = 32;
  /// Max decoded bytes in one string.
  int64_t max_string_bytes = int64_t{1} << 16;
  /// Max members in one object / elements in one array.
  int64_t max_members = 1 << 16;
};

/// \brief A parsed JSON value: null, bool, number (double), string, array
/// or object (member order preserved).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; calling the wrong one is a checked programming error
  /// (validate with the predicates first).
  bool AsBool() const { return std::get<bool>(value_); }
  double AsNumber() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }

  /// Object member lookup (linear scan; objects are protocol-sized).
  /// Null when `this` is not an object or the key is absent.
  const JsonValue* Find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parses exactly one JSON value spanning all of `text` (leading/trailing
/// ASCII whitespace tolerated; anything else after the value is
/// "trailing junk"). Error statuses are anchored `request:1:<column>:`
/// where column is the 1-based byte offset.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonLimits& limits = {});

}  // namespace dgc
