// The dgc_serve daemon core (docs/SERVING.md): accepts
// `dgc.serve.request.v1` lines over stdin/stdout or a TCP socket, runs the
// two-stage pipeline per request, and answers with single-line
// `dgc.serve.response.v1` envelopes embedding the run report.
//
// Threading model: each connection gets a dedicated I/O thread that parses
// lines and runs requests sequentially (NDJSON pipelining); the compute
// inside a request — SpGEMM rows, R-MCL iterations — fans out onto the
// process-wide persistent thread pool exactly as the CLI tools do. Requests
// from different connections therefore run concurrently, and the
// determinism contract (bit-identical clustering at any thread count)
// makes their results independent of that interleaving.
//
// Failure isolation: every per-request failure — malformed JSON, a missing
// or hostile graph file, a tripped deadline/memory budget — is converted
// into an ok=false envelope on that connection. Nothing a client sends
// kills the daemon; only {"op": "shutdown"} (or EOF on stdin in stream
// mode) stops it.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/request.h"
#include "util/result.h"

namespace dgc {

struct ServeOptions {
  /// Byte budget for the symmetrization cache (0 disables caching).
  int64_t cache_max_bytes = int64_t{256} << 20;
  /// Request / graph-file bounds applied to every request.
  ServeLimits limits;
  /// Optional server-lifetime sink for cache and request counters
  /// (serve.cache.hits/misses/evictions, serve.requests, serve.errors).
  /// Distinct from the per-request registries that populate each response's
  /// embedded report. Must outlive the server when set.
  MetricsRegistry* metrics = nullptr;
  /// TCP bind address; loopback by default — the protocol has no auth, so
  /// exposing it wider is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port (0 = let the kernel pick; StartTcp returns the choice).
  int port = 0;
};

/// \brief Serves pipeline requests; see the file comment for the model.
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line and returns the single-line response
  /// (without trailing newline). Never "throws": every failure is encoded
  /// in the returned envelope. Safe to call from multiple threads.
  std::string HandleRequestLine(std::string_view line);

  /// Stream mode: reads newline-delimited requests from `in`, writes one
  /// response line per request to `out` (flushed per line), returns after
  /// EOF or an acknowledged shutdown request.
  Status ServeStream(std::istream& in, std::ostream& out);

  /// Opens, binds and listens on the TCP socket; returns the bound port.
  /// Call once, before RunTcp().
  Result<int> StartTcp();

  /// Accept loop: one dedicated thread per connection, each serving
  /// NDJSON request/response pairs. Returns after a shutdown request has
  /// been acknowledged and in-flight connections have drained.
  Status RunTcp();

  /// True once a shutdown request has been accepted.
  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  SymmetrizationCache& cache() { return cache_; }

  /// Number of live incremental delta sessions (tests/ops visibility).
  int64_t num_delta_sessions() const;

 private:
  /// One streamed-update session: the incremental symmetrizer state plus
  /// the chained delta digest and the previous converged flow matrix used
  /// to warm-start re-clustering. Sessions are keyed by the stage-1 cache
  /// key of the *base* (on-disk) graph, so every client that streams deltas
  /// against the same graph + configuration shares one evolving state.
  struct DeltaSession;

  std::string HandleClusterRequest(const ServeRequest& req);
  std::string HandleDeltaRequest(const ServeRequest& req);
  void ServeConnection(int fd);

  const ServeOptions options_;
  SymmetrizationCache cache_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::vector<std::thread> connection_threads_;

  /// Guards sessions_ and every session's mutable state: delta requests are
  /// serialized server-wide, which keeps the chain digests, warm-start
  /// flows and incremental counters coherent without per-session locking.
  /// (Deltas are small by design; the cluster path stays concurrent.)
  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::unique_ptr<DeltaSession>> sessions_;
  uint64_t session_seq_ = 0;
};

}  // namespace dgc
