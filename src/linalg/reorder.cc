#include "linalg/reorder.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/parallel_audit.h"
#include "util/thread_pool.h"

namespace dgc {

namespace {

/// Merged undirected neighbour list of vertex u (union of row u of `a` and
/// row u of `at`, self excluded), appended to `out`. Both rows are sorted,
/// so the union is a two-pointer merge producing sorted unique ids.
void UndirectedNeighbors(const CsrMatrix& a, const CsrMatrix& at, Index u,
                         std::vector<Index>& out) {
  auto ac = a.RowCols(u);
  auto tc = at.RowCols(u);
  size_t i = 0, j = 0;
  while (i < ac.size() || j < tc.size()) {
    Index v;
    if (j >= tc.size() || (i < ac.size() && ac[i] < tc[j])) {
      v = ac[i++];
    } else if (i >= ac.size() || tc[j] < ac[i]) {
      v = tc[j++];
    } else {
      v = ac[i];
      ++i;
      ++j;
    }
    if (v != u) out.push_back(v);
  }
}

/// Undirected degree of every vertex (size of the merged neighbour list).
std::vector<Index> UndirectedDegrees(const CsrMatrix& a, const CsrMatrix& at) {
  const Index n = a.rows();
  std::vector<Index> degree(static_cast<size_t>(n), 0);
  std::vector<Index> scratch;
  for (Index u = 0; u < n; ++u) {
    scratch.clear();
    UndirectedNeighbors(a, at, u, scratch);
    degree[static_cast<size_t>(u)] = static_cast<Index>(scratch.size());
  }
  return degree;
}

}  // namespace

std::string_view ReorderMethodName(ReorderMethod method) {
  switch (method) {
    case ReorderMethod::kNone:
      return "none";
    case ReorderMethod::kDegree:
      return "degree";
    case ReorderMethod::kRcm:
      return "rcm";
  }
  return "none";
}

Result<ReorderMethod> ParseReorderMethod(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  if (lower == "none" || lower.empty()) return ReorderMethod::kNone;
  if (lower == "degree" || lower == "deg") return ReorderMethod::kDegree;
  if (lower == "rcm" || lower == "cuthill-mckee") return ReorderMethod::kRcm;
  return Status::NotFound("unknown reorder method: " + std::string(name));
}

std::vector<Index> DegreePermutation(const CsrMatrix& a, const CsrMatrix& at) {
  DGC_CHECK_EQ(a.rows(), a.cols());
  const Index n = a.rows();
  const std::vector<Index> degree = UndirectedDegrees(a, at);
  std::vector<Index> perm(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  std::sort(perm.begin(), perm.end(), [&degree](Index x, Index y) {
    const Index dx = degree[static_cast<size_t>(x)];
    const Index dy = degree[static_cast<size_t>(y)];
    return dx != dy ? dx < dy : x < y;
  });
  return perm;
}

std::vector<Index> RcmPermutation(const CsrMatrix& a, const CsrMatrix& at) {
  DGC_CHECK_EQ(a.rows(), a.cols());
  const Index n = a.rows();
  const std::vector<Index> degree = UndirectedDegrees(a, at);
  // Component seeds in ascending (degree, id) order, so the traversal (and
  // with it the permutation) is fully deterministic.
  std::vector<Index> seeds(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) seeds[static_cast<size_t>(i)] = i;
  std::sort(seeds.begin(), seeds.end(), [&degree](Index x, Index y) {
    const Index dx = degree[static_cast<size_t>(x)];
    const Index dy = degree[static_cast<size_t>(y)];
    return dx != dy ? dx < dy : x < y;
  });

  std::vector<Index> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<Index> neighbors;
  for (Index seed : seeds) {
    if (visited[static_cast<size_t>(seed)]) continue;
    // BFS over this component; `order` itself is the queue.
    const size_t head = order.size();
    visited[static_cast<size_t>(seed)] = 1;
    order.push_back(seed);
    for (size_t q = head; q < order.size(); ++q) {
      const Index u = order[q];
      neighbors.clear();
      UndirectedNeighbors(a, at, u, neighbors);
      std::sort(neighbors.begin(), neighbors.end(),
                [&degree](Index x, Index y) {
                  const Index dx = degree[static_cast<size_t>(x)];
                  const Index dy = degree[static_cast<size_t>(y)];
                  return dx != dy ? dx < dy : x < y;
                });
      for (Index v : neighbors) {
        if (visited[static_cast<size_t>(v)]) continue;
        visited[static_cast<size_t>(v)] = 1;
        order.push_back(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<Index> BuildReorderPermutation(ReorderMethod method,
                                           const CsrMatrix& a,
                                           const CsrMatrix& at) {
  switch (method) {
    case ReorderMethod::kDegree:
      return DegreePermutation(a, at);
    case ReorderMethod::kRcm:
      return RcmPermutation(a, at);
    case ReorderMethod::kNone:
      break;
  }
  std::vector<Index> identity(static_cast<size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) identity[static_cast<size_t>(i)] = i;
  return identity;
}

std::vector<Index> InvertPermutation(std::span<const Index> perm) {
  std::vector<Index> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<size_t>(perm[i])] = static_cast<Index>(i);
  }
  return inv;
}

CsrMatrix PermuteRows(const CsrMatrix& a, std::span<const Index> perm) {
  const Index n = a.rows();
  DGC_CHECK_EQ(static_cast<Index>(perm.size()), n);
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index i = 0; i < n; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] + a.RowNnz(perm[static_cast<size_t>(i)]);
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  for (Index i = 0; i < n; ++i) {
    auto cols = a.RowCols(perm[static_cast<size_t>(i)]);
    auto vals = a.RowValues(perm[static_cast<size_t>(i)]);
    std::copy(cols.begin(), cols.end(),
              col_idx.begin() + row_ptr[static_cast<size_t>(i)]);
    std::copy(vals.begin(), vals.end(),
              values.begin() + row_ptr[static_cast<size_t>(i)]);
  }
  CsrMatrix p = CsrMatrix::FromPartsUnchecked(
      n, a.cols(), std::move(row_ptr), std::move(col_idx), std::move(values));
  p.ValidateStructure("PermuteRows");
  return p;
}

CsrMatrix PermuteSymmetric(const CsrMatrix& a, std::span<const Index> perm) {
  const Index n = a.rows();
  DGC_CHECK_EQ(a.rows(), a.cols());
  DGC_CHECK_EQ(static_cast<Index>(perm.size()), n);
  const std::vector<Index> inv = InvertPermutation(perm);
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index i = 0; i < n; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] + a.RowNnz(perm[static_cast<size_t>(i)]);
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  std::vector<std::pair<Index, Scalar>> entries;
  for (Index i = 0; i < n; ++i) {
    auto cols = a.RowCols(perm[static_cast<size_t>(i)]);
    auto vals = a.RowValues(perm[static_cast<size_t>(i)]);
    entries.clear();
    for (size_t p = 0; p < cols.size(); ++p) {
      entries.emplace_back(inv[static_cast<size_t>(cols[p])], vals[p]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    Offset out = row_ptr[static_cast<size_t>(i)];
    for (const auto& [c, v] : entries) {
      col_idx[static_cast<size_t>(out)] = c;
      values[static_cast<size_t>(out)] = v;
      ++out;
    }
  }
  CsrMatrix p = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  p.ValidateStructure("PermuteSymmetric");
  return p;
}

CsrMatrix UnpermuteUpperTriangle(const CsrMatrix& upper,
                                 std::span<const Index> perm,
                                 int num_threads) {
  const Index n = upper.rows();
  DGC_CHECK_EQ(upper.rows(), upper.cols());
  DGC_CHECK_EQ(static_cast<Index>(perm.size()), n);
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(n, 1)));
  // Counting pass: each permuted entry (i, j) lands in original row
  // min(perm[i], perm[j]).
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index i = 0; i < n; ++i) {
    const Index pi = perm[static_cast<size_t>(i)];
    for (Index j : upper.RowCols(i)) {
      const Index pj = perm[static_cast<size_t>(j)];
      ++row_ptr[static_cast<size_t>(std::min(pi, pj)) + 1];
    }
  }
  for (Index r = 0; r < n; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] += row_ptr[static_cast<size_t>(r)];
  }
  // Scatter pass, then per-row column sort. Values are moved verbatim —
  // this function performs no floating-point arithmetic at all, which is
  // what makes the reordered product bit-identical to the direct one.
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  std::vector<Offset> fill(row_ptr.begin(), row_ptr.end() - 1);
  for (Index i = 0; i < n; ++i) {
    const Index pi = perm[static_cast<size_t>(i)];
    auto cols = upper.RowCols(i);
    auto vals = upper.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      const Index pj = perm[static_cast<size_t>(cols[p])];
      const Index r = std::min(pi, pj);
      const Offset dst = fill[static_cast<size_t>(r)]++;
      col_idx[static_cast<size_t>(dst)] = std::max(pi, pj);
      values[static_cast<size_t>(dst)] = vals[p];
    }
  }
  ParallelForChunked(0, n, threads, [&](int64_t lo, int64_t hi) {
    std::vector<std::pair<Index, Scalar>> entries;
    for (int64_t r = lo; r < hi; ++r) {
      const Offset begin = row_ptr[static_cast<size_t>(r)];
      const Offset end = row_ptr[static_cast<size_t>(r) + 1];
      audit::AuditSpan audit_c(col_idx.data() + begin,
                               static_cast<size_t>(end - begin),
                               "unpermute.col_idx");
      audit::AuditSpan audit_v(values.data() + begin,
                               static_cast<size_t>(end - begin),
                               "unpermute.values");
      entries.clear();
      for (Offset p = begin; p < end; ++p) {
        entries.emplace_back(col_idx[static_cast<size_t>(p)],
                             values[static_cast<size_t>(p)]);
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (Offset p = begin; p < end; ++p) {
        col_idx[static_cast<size_t>(p)] =
            entries[static_cast<size_t>(p - begin)].first;
        values[static_cast<size_t>(p)] =
            entries[static_cast<size_t>(p - begin)].second;
      }
    }
  });
  CsrMatrix u = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  u.ValidateStructure("UnpermuteUpperTriangle");
  return u;
}

std::vector<Index> UnpermuteLabels(std::span<const Index> labels,
                                   std::span<const Index> perm) {
  DGC_CHECK_EQ(labels.size(), perm.size());
  std::vector<Index> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    out[static_cast<size_t>(perm[i])] = labels[i];
  }
  return out;
}

Result<CsrMatrix> SpGemmAAtSymmetricReordered(const CsrMatrix& a,
                                              std::span<const Scalar> row_scale,
                                              std::span<const Scalar> col_scale,
                                              const SpGemmOptions& options,
                                              std::span<const Index> perm) {
  if (static_cast<Index>(perm.size()) != a.rows()) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetricReordered: permutation size " +
        std::to_string(perm.size()) + " != rows of " + a.DebugString());
  }
  const CsrMatrix a_p = PermuteRows(a, perm);
  std::vector<Scalar> row_scale_p;
  if (!row_scale.empty()) {
    if (static_cast<Index>(row_scale.size()) != a.rows()) {
      return Status::InvalidArgument(
          "SpGemmAAtSymmetricReordered: row_scale size " +
          std::to_string(row_scale.size()) + " != rows of " + a.DebugString());
    }
    row_scale_p.resize(row_scale.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      row_scale_p[i] = row_scale[static_cast<size_t>(perm[i])];
    }
  }
  const CsrMatrix a_p_t = a_p.Transpose(options.num_threads);
  DGC_ASSIGN_OR_RETURN(
      CsrMatrix upper_p,
      SpGemmAAtSymmetric(a_p, row_scale_p, col_scale, options, &a_p_t));
  return UnpermuteUpperTriangle(upper_p, perm, options.num_threads);
}

}  // namespace dgc
