// Compressed Sparse Row matrix: the core data structure of the library.
// Directed graphs are CSR adjacency matrices; symmetrizations are CSR->CSR
// transforms (see src/core).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/types.h"
#include "util/result.h"
#include "util/status.h"

namespace dgc {

/// \brief An immutable-shape sparse matrix in CSR layout.
///
/// Invariants (checked by Validate()):
///  - row_ptr has rows()+1 entries, non-decreasing, row_ptr[0] == 0,
///    row_ptr[rows()] == nnz().
///  - column indices within each row are strictly increasing (sorted, no
///    duplicates) and in [0, cols()).
///
/// Values may be mutated in place (e.g. by scaling); structure may not.
class CsrMatrix {
 public:
  /// An empty 0x0 matrix.
  CsrMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// Takes ownership of pre-built CSR arrays. Returns InvalidArgument if the
  /// CSR invariants do not hold.
  static Result<CsrMatrix> FromParts(Index rows, Index cols,
                                     std::vector<Offset> row_ptr,
                                     std::vector<Index> col_idx,
                                     std::vector<Scalar> values);

  /// As FromParts but skips Validate(). For kernels that construct rows
  /// correct-by-construction (sorted, deduplicated, in range) in a hot loop
  /// where the O(nnz) serial validation pass would dominate; everyone else
  /// should use FromParts.
  static CsrMatrix FromPartsUnchecked(Index rows, Index cols,
                                      std::vector<Offset> row_ptr,
                                      std::vector<Index> col_idx,
                                      std::vector<Scalar> values);

  /// Builds from unsorted triplets; duplicate (row, col) entries are summed.
  /// Entries whose summed value is exactly 0 are kept (callers that want to
  /// drop them should Prune with an epsilon).
  static Result<CsrMatrix> FromTriplets(Index rows, Index cols,
                                        std::vector<Triplet> triplets);

  /// n x n identity.
  static CsrMatrix Identity(Index n);

  /// Matrix with no nonzeros.
  static CsrMatrix Zero(Index rows, Index cols);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return row_ptr_.back(); }

  std::span<const Offset> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_idx() const { return col_idx_; }
  std::span<const Scalar> values() const { return values_; }
  std::span<Scalar> mutable_values() { return values_; }

  /// Nonzeros of row i as parallel (col, value) spans.
  std::span<const Index> RowCols(Index i) const {
    return std::span<const Index>(col_idx_.data() + row_ptr_[i],
                                  static_cast<size_t>(RowNnz(i)));
  }
  std::span<const Scalar> RowValues(Index i) const {
    return std::span<const Scalar>(values_.data() + row_ptr_[i],
                                   static_cast<size_t>(RowNnz(i)));
  }
  Offset RowNnz(Index i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// Value at (i, j), 0 if not stored. O(log RowNnz(i)).
  Scalar At(Index i, Index j) const;

  /// Checks all CSR invariants; OK on success.
  Status Validate() const;

  /// Debug-build structural check for kernel boundaries: when
  /// DGC_ENABLE_DCHECKS is on, fatals with `context` in the message if
  /// Validate() fails; otherwise compiles to (almost) nothing. Every
  /// FromPartsUnchecked call site must be paired with one of these on the
  /// constructed matrix (enforced by tools/lint/dgc_lint.py, rule
  /// unchecked-needs-validate).
  void ValidateStructure(const char* context) const;

  /// Aᵀ as a new matrix (counting sort; O(nnz + rows + cols)). With more
  /// than one thread (0 = one per hardware core) the counting and scatter
  /// passes run over static row blocks with exact per-block placement, so
  /// the result is bit-identical for every thread count.
  CsrMatrix Transpose(int num_threads = 1) const;

  /// Per-row sum of values (out-weight of each vertex for adjacency input).
  std::vector<Scalar> RowSums() const;
  /// Per-column sum of values.
  std::vector<Scalar> ColSums() const;
  /// Number of stored entries per row (out-degree).
  std::vector<Offset> RowCounts() const;
  /// Number of stored entries per column (in-degree).
  std::vector<Offset> ColCounts() const;

  /// In-place row scaling: values in row i multiplied by scale[i].
  void ScaleRows(std::span<const Scalar> scale);
  /// In-place column scaling: values in column j multiplied by scale[j].
  void ScaleCols(std::span<const Scalar> scale);

  /// Returns a copy with entries whose |value| < threshold removed.
  /// Diagonal entries are dropped too if drop_diagonal.
  CsrMatrix Pruned(Scalar threshold, bool drop_diagonal = false) const;

  /// Returns A + I (square matrices only). Existing diagonal entries get +1.
  Result<CsrMatrix> PlusIdentity() const;

  /// Elementwise A + B (same shape).
  static Result<CsrMatrix> Add(const CsrMatrix& a, const CsrMatrix& b);

  /// y = A x (sizes must match).
  void Multiply(std::span<const Scalar> x, std::span<Scalar> y) const;
  /// y = Aᵀ x without forming the transpose.
  void MultiplyTranspose(std::span<const Scalar> x,
                         std::span<Scalar> y) const;

  /// True if the matrix equals its transpose up to `tol`.
  bool IsSymmetric(Scalar tol = 1e-12) const;

  /// Dense row-major copy (tests/small matrices only).
  std::vector<Scalar> ToDense() const;

  /// Human-readable summary, e.g. "CsrMatrix 100x100, nnz=512".
  std::string DebugString() const;

  bool operator==(const CsrMatrix& other) const = default;

 private:
  CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
            std::vector<Index> col_idx, std::vector<Scalar> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {}

  Index rows_;
  Index cols_;
  std::vector<Offset> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Scalar> values_;
};

}  // namespace dgc
