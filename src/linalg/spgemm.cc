#include "linalg/spgemm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace dgc {

namespace {

/// Computes one output row of C = A * B into (cols, vals), using
/// accumulator/marker workspaces of size cols(B). marker[c] == row marks
/// column c as touched for the current row.
void ComputeRow(const CsrMatrix& a, const CsrMatrix& b, Index row,
                const SpGemmOptions& options, std::vector<Scalar>& accum,
                std::vector<Index>& marker, std::vector<Index>& touched,
                std::vector<Index>& out_cols, std::vector<Scalar>& out_vals) {
  touched.clear();
  auto a_cols = a.RowCols(row);
  auto a_vals = a.RowValues(row);
  for (size_t i = 0; i < a_cols.size(); ++i) {
    const Index k = a_cols[i];
    const Scalar av = a_vals[i];
    auto b_cols = b.RowCols(k);
    auto b_vals = b.RowValues(k);
    for (size_t j = 0; j < b_cols.size(); ++j) {
      const Index c = b_cols[j];
      if (marker[static_cast<size_t>(c)] != row) {
        marker[static_cast<size_t>(c)] = row;
        accum[static_cast<size_t>(c)] = 0.0;
        touched.push_back(c);
      }
      accum[static_cast<size_t>(c)] += av * b_vals[j];
    }
  }
  std::sort(touched.begin(), touched.end());
  out_cols.clear();
  out_vals.clear();
  for (Index c : touched) {
    const Scalar v = accum[static_cast<size_t>(c)];
    if (std::abs(v) < options.threshold) continue;
    if (options.drop_diagonal && c == row) continue;
    out_cols.push_back(c);
    out_vals.push_back(v);
  }
}

}  // namespace

Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const SpGemmOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("SpGemm: inner dimensions differ (" +
                                   a.DebugString() + " * " + b.DebugString() +
                                   ")");
  }
  const Index rows = a.rows();
  const Index cols = b.cols();
  const int threads = std::max(1, options.num_threads);

  // Per-row results gathered into per-thread buckets, then concatenated.
  std::vector<std::vector<Index>> row_cols(static_cast<size_t>(rows));
  std::vector<std::vector<Scalar>> row_vals(static_cast<size_t>(rows));

  ParallelForChunked(
      0, rows, threads,
      [&](int64_t lo, int64_t hi) {
        std::vector<Scalar> accum(static_cast<size_t>(cols), 0.0);
        std::vector<Index> marker(static_cast<size_t>(cols), -1);
        std::vector<Index> touched;
        std::vector<Index> out_cols;
        std::vector<Scalar> out_vals;
        for (int64_t r = lo; r < hi; ++r) {
          ComputeRow(a, b, static_cast<Index>(r), options, accum, marker,
                     touched, out_cols, out_vals);
          row_cols[static_cast<size_t>(r)] = out_cols;
          row_vals[static_cast<size_t>(r)] = out_vals;
        }
      });

  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] +
        static_cast<Offset>(row_cols[static_cast<size_t>(r)].size());
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  for (Index r = 0; r < rows; ++r) {
    std::copy(row_cols[static_cast<size_t>(r)].begin(),
              row_cols[static_cast<size_t>(r)].end(),
              col_idx.begin() + row_ptr[static_cast<size_t>(r)]);
    std::copy(row_vals[static_cast<size_t>(r)].begin(),
              row_vals[static_cast<size_t>(r)].end(),
              values.begin() + row_ptr[static_cast<size_t>(r)]);
  }
  return CsrMatrix::FromParts(rows, cols, std::move(row_ptr),
                              std::move(col_idx), std::move(values));
}

Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a, a.Transpose(), options);
}

Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a.Transpose(), a, options);
}

Offset SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b) {
  DGC_CHECK_EQ(a.cols(), b.rows());
  Offset flops = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k : a.RowCols(r)) {
      flops += b.RowNnz(k);
    }
  }
  return flops;
}

}  // namespace dgc
