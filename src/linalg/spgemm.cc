#include "linalg/spgemm.h"

#include <algorithm>
#include <cmath>

#include "linalg/spgemm_impl.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/parallel_audit.h"
#include "util/thread_pool.h"

namespace dgc {

using spgemm_internal::AssembleRows;
using spgemm_internal::AssemblyBytes;
using spgemm_internal::Cancelled;
using spgemm_internal::ComputeRow;
using spgemm_internal::ComputeUpperRow;
using spgemm_internal::RecordPassStats;
using spgemm_internal::SpGemmWorkspace;


Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const SpGemmOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("SpGemm: inner dimensions differ (" +
                                   a.DebugString() + " * " + b.DebugString() +
                                   ")");
  }
  const Index rows = a.rows();
  const Index cols = b.cols();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(rows, 1)));
  StageSpan span(options.metrics, "spgemm");
  if (span.live()) {
    span.Metric("rows", rows);
    span.Metric("cols", cols);
    span.Metric("threshold", options.threshold);
    // O(nnz(A)) estimate — computed only when a sink is attached.
    span.Metric("flops", SpGemmFlops(a, b));
  }

  if (Cancelled(options.cancel)) return options.cancel->status();
  // Dense accumulators are the fixed per-worker working set; charge them
  // before they are allocated.
  MemoryCharge accum_charge(
      options.cancel,
      static_cast<int64_t>(threads) * cols *
          static_cast<int64_t>(sizeof(Scalar) + sizeof(Index)));
  if (accum_charge.exceeded()) return options.cancel->status();

  // Pass 1: compute every output row into per-worker buffers, recording the
  // per-row nnz. Dynamic chunking keeps hub rows from imbalancing workers.
  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(rows), 0);
  ParallelForWorkers(
      0, rows, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        if (Cancelled(options.cancel)) return;  // skip the chunk, not a row
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(cols);
        audit::AuditSpan audit_nnz(row_nnz.data() + lo,
                                   static_cast<size_t>(hi - lo),
                                   "spgemm.row_nnz");
        for (int64_t r = lo; r < hi; ++r) {
          const size_t before = w.cols.size();
          ComputeRow(a, b, static_cast<Index>(r), options, w);
          row_nnz[static_cast<size_t>(r)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(r));
        }
      });
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge assembly_charge(options.cancel,
                               AssemblyBytes(rows, workspaces));
  if (assembly_charge.exceeded()) return options.cancel->status();

  // Pass 2: prefix-sum row pointers (serial, deterministic for any thread
  // count) and copy every buffered row to its final offset in parallel.
  RecordPassStats(span, workspaces, threads);
  CsrMatrix c = AssembleRows(rows, cols, threads, workspaces, row_nnz,
                             /*row_base=*/0, "SpGemm");
  span.Metric("output_nnz", c.nnz());
  return c;
}

Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a, a.Transpose(options.num_threads), options);
}

Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a, const CsrMatrix& a_transpose,
                            const SpGemmOptions& options) {
  if (a_transpose.rows() != a.cols() || a_transpose.cols() != a.rows() ||
      a_transpose.nnz() != a.nnz()) {
    return Status::InvalidArgument("SpGemmAAt: a_transpose " +
                                   a_transpose.DebugString() +
                                   " is not the transpose of " +
                                   a.DebugString());
  }
  return SpGemm(a, a_transpose, options);
}

Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a.Transpose(options.num_threads), a, options);
}

Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a, const CsrMatrix& a_transpose,
                            const SpGemmOptions& options) {
  if (a_transpose.rows() != a.cols() || a_transpose.cols() != a.rows() ||
      a_transpose.nnz() != a.nnz()) {
    return Status::InvalidArgument("SpGemmAtA: a_transpose " +
                                   a_transpose.DebugString() +
                                   " is not the transpose of " +
                                   a.DebugString());
  }
  return SpGemm(a_transpose, a, options);
}

Result<CsrMatrix> SpGemmAAtSymmetric(const CsrMatrix& a,
                                     std::span<const Scalar> row_scale,
                                     std::span<const Scalar> col_scale,
                                     const SpGemmOptions& options,
                                     const CsrMatrix* a_transpose) {
  const Index rows = a.rows();
  if (!row_scale.empty() &&
      static_cast<Index>(row_scale.size()) != rows) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetric: row_scale size " +
        std::to_string(row_scale.size()) + " != rows of " + a.DebugString());
  }
  if (!col_scale.empty() &&
      static_cast<Index>(col_scale.size()) != a.cols()) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetric: col_scale size " +
        std::to_string(col_scale.size()) + " != cols of " + a.DebugString());
  }
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(rows, 1)));
  CsrMatrix local_transpose;
  if (a_transpose == nullptr) {
    if (Cancelled(options.cancel)) return options.cancel->status();
    local_transpose = a.Transpose(threads);
    a_transpose = &local_transpose;
  } else if (a_transpose->rows() != a.cols() ||
             a_transpose->cols() != rows ||
             a_transpose->nnz() != a.nnz()) {
    return Status::InvalidArgument("SpGemmAAtSymmetric: a_transpose " +
                                   a_transpose->DebugString() +
                                   " is not the transpose of " +
                                   a.DebugString());
  }
  StageSpan span(options.metrics, "spgemm.aat_symmetric");
  if (span.live()) {
    span.Metric("rows", rows);
    span.Metric("threshold", options.threshold);
    // Full-product multiply-add count; the upper-triangle kernel performs
    // roughly half of it. O(nnz(A)) — computed only when a sink is attached.
    span.Metric("flops_full_product", SpGemmFlops(a, *a_transpose));
  }

  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge accum_charge(
      options.cancel,
      static_cast<int64_t>(threads) * rows *
          static_cast<int64_t>(sizeof(Scalar) + sizeof(Index)));
  if (accum_charge.exceeded()) return options.cancel->status();

  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(rows), 0);
  ParallelForWorkers(
      0, rows, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        if (Cancelled(options.cancel)) return;
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(rows);
        for (int64_t r = lo; r < hi; ++r) {
          const size_t before = w.cols.size();
          ComputeUpperRow(a, *a_transpose, row_scale, col_scale,
                          static_cast<Index>(r), options, w);
          row_nnz[static_cast<size_t>(r)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(r));
        }
      });
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge assembly_charge(options.cancel,
                               AssemblyBytes(rows, workspaces));
  if (assembly_charge.exceeded()) return options.cancel->status();
  RecordPassStats(span, workspaces, threads);
  CsrMatrix upper = AssembleRows(rows, rows, threads, workspaces, row_nnz,
                                 /*row_base=*/0, "SpGemmAAtSymmetric");
  span.Metric("output_nnz", upper.nnz());
  return upper;
}

Result<CsrMatrix> SpGemmAAtSymmetricUpdateRows(
    const CsrMatrix& a, std::span<const Scalar> row_scale,
    std::span<const Scalar> col_scale, const SpGemmOptions& options,
    const CsrMatrix& a_transpose, std::span<const Index> rows,
    const CsrMatrix& cached_upper) {
  const Index n = a.rows();
  if (!row_scale.empty() && static_cast<Index>(row_scale.size()) != n) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetricUpdateRows: row_scale size " +
        std::to_string(row_scale.size()) + " != rows of " + a.DebugString());
  }
  if (!col_scale.empty() &&
      static_cast<Index>(col_scale.size()) != a.cols()) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetricUpdateRows: col_scale size " +
        std::to_string(col_scale.size()) + " != cols of " + a.DebugString());
  }
  if (a_transpose.rows() != a.cols() || a_transpose.cols() != n ||
      a_transpose.nnz() != a.nnz()) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetricUpdateRows: a_transpose " +
        a_transpose.DebugString() + " is not the transpose of " +
        a.DebugString());
  }
  if (cached_upper.rows() != n || cached_upper.cols() != n) {
    return Status::InvalidArgument(
        "SpGemmAAtSymmetricUpdateRows: cached triangle " +
        cached_upper.DebugString() + " does not match " + a.DebugString());
  }
  for (size_t p = 0; p < rows.size(); ++p) {
    if (rows[p] < 0 || rows[p] >= n ||
        (p > 0 && rows[p] <= rows[p - 1])) {
      return Status::InvalidArgument(
          "SpGemmAAtSymmetricUpdateRows: row list must be sorted, unique, "
          "and within [0, " +
          std::to_string(n) + ")");
    }
  }
  if (rows.empty()) return cached_upper;

  const Index k = static_cast<Index>(rows.size());
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(k, 1)));
  StageSpan span(options.metrics, "spgemm.aat_symmetric.update");
  if (span.live()) {
    span.Metric("rows_total", n);
    span.Metric("rows_recomputed", k);
    span.Metric("threshold", options.threshold);
  }

  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge accum_charge(
      options.cancel,
      static_cast<int64_t>(threads) * n *
          static_cast<int64_t>(sizeof(Scalar) + sizeof(Index)));
  if (accum_charge.exceeded()) return options.cancel->status();

  // Pass 1 over list POSITIONS: position p computes global row rows[p]
  // through the shared upper-triangle kernel (marker stamps use the global
  // row id, so reuse across positions stays sound), but buffers the row
  // under p. AssembleRows with row_base = 0 then yields a compact k-row
  // "patch" CSR whose row p holds the recomputed global row rows[p].
  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(k), 0);
  ParallelForWorkers(
      0, k, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        if (Cancelled(options.cancel)) return;
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(n);
        for (int64_t p = lo; p < hi; ++p) {
          const size_t before = w.cols.size();
          ComputeUpperRow(a, a_transpose, row_scale, col_scale,
                          rows[static_cast<size_t>(p)], options, w);
          row_nnz[static_cast<size_t>(p)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(p));
        }
      });
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge assembly_charge(options.cancel, AssemblyBytes(k, workspaces));
  if (assembly_charge.exceeded()) return options.cancel->status();
  RecordPassStats(span, workspaces, threads);
  const CsrMatrix patch =
      AssembleRows(k, n, threads, workspaces, row_nnz,
                   /*row_base=*/0, "SpGemmAAtSymmetricUpdateRows(patch)");

  // Splice: serial two-cursor pass replacing the listed rows of the cached
  // triangle with the patch rows. Memcpy-bound O(nnz); kept serial so the
  // only parallel surface of the update is the shared row kernel above.
  const Offset spliced_nnz =
      cached_upper.nnz() + patch.nnz() -
      [&] {
        Offset replaced = 0;
        for (Index r : rows) replaced += cached_upper.RowNnz(r);
        return replaced;
      }();
  MemoryCharge splice_charge(
      options.cancel,
      spliced_nnz * static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)) +
          (static_cast<int64_t>(n) + 1) *
              static_cast<int64_t>(sizeof(Offset)));
  if (splice_charge.exceeded()) return options.cancel->status();
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  std::vector<Index> col_idx(static_cast<size_t>(spliced_nnz));
  std::vector<Scalar> values(static_cast<size_t>(spliced_nnz));
  size_t next = 0;
  Offset out = 0;
  for (Index r = 0; r < n; ++r) {
    const bool patched = next < rows.size() && rows[next] == r;
    const CsrMatrix& src = patched ? patch : cached_upper;
    const Index src_row = patched ? static_cast<Index>(next) : r;
    if (patched) ++next;
    const auto cols = src.RowCols(src_row);
    const auto vals = src.RowValues(src_row);
    std::copy_n(cols.begin(), cols.size(),
                col_idx.begin() + static_cast<long>(out));
    std::copy_n(vals.begin(), vals.size(),
                values.begin() + static_cast<long>(out));
    out += static_cast<Offset>(cols.size());
    row_ptr[static_cast<size_t>(r) + 1] = out;
  }
  CsrMatrix spliced = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  spliced.ValidateStructure("SpGemmAAtSymmetricUpdateRows");
  span.Metric("output_nnz", spliced.nnz());
  return spliced;
}

Result<CsrMatrix> SpGemmSymmetricSum(const CsrMatrix& upper_b,
                                     const CsrMatrix& upper_c,
                                     const SpGemmOptions& options) {
  if (upper_b.rows() != upper_c.rows() || upper_b.cols() != upper_c.cols()) {
    return Status::InvalidArgument("SpGemmSymmetricSum: shape mismatch " +
                                   upper_b.DebugString() + " vs " +
                                   upper_c.DebugString());
  }
  if (upper_b.rows() != upper_b.cols()) {
    return Status::InvalidArgument(
        "SpGemmSymmetricSum: triangles must be square, got " +
        upper_b.DebugString());
  }
  const Index n = upper_b.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(n, 1)));
  StageSpan span(options.metrics, "spgemm.symmetric_sum");
  if (span.live()) {
    span.Metric("input_nnz_b", upper_b.nnz());
    span.Metric("input_nnz_c", upper_c.nnz());
    span.Metric("threshold", options.threshold);
  }

  // Pass 1: merge + prune each upper row into per-worker buffers. The
  // two-pointer merge visits columns in the same order as CsrMatrix::Add,
  // so shared entries sum with identical rounding.
  if (Cancelled(options.cancel)) return options.cancel->status();
  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(n), 0);
  ParallelForWorkers(
      0, n, threads, /*grain=*/0, [&](int worker, int64_t lo, int64_t hi) {
        if (Cancelled(options.cancel)) return;
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        for (int64_t r64 = lo; r64 < hi; ++r64) {
          const Index r = static_cast<Index>(r64);
          const size_t before = w.cols.size();
          auto bc = upper_b.RowCols(r);
          auto bv = upper_b.RowValues(r);
          auto cc = upper_c.RowCols(r);
          auto cv = upper_c.RowValues(r);
          size_t i = 0, j = 0;
          while (i < bc.size() || j < cc.size()) {
            Index col;
            Scalar v;
            if (j >= cc.size() || (i < bc.size() && bc[i] < cc[j])) {
              col = bc[i];
              v = bv[i];
              ++i;
            } else if (i >= bc.size() || cc[j] < bc[i]) {
              col = cc[j];
              v = cv[j];
              ++j;
            } else {
              col = bc[i];
              v = bv[i] + cv[j];
              ++i;
              ++j;
            }
            if (options.threshold > 0.0 && std::abs(v) < options.threshold) {
              ++w.dropped;
              continue;
            }
            if (options.drop_diagonal && col == r) continue;
            w.cols.push_back(col);
            w.vals.push_back(v);
          }
          row_nnz[static_cast<size_t>(r)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(r);
        }
      });
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge assembly_charge(options.cancel, AssemblyBytes(n, workspaces));
  if (assembly_charge.exceeded()) return options.cancel->status();
  RecordPassStats(span, workspaces, threads);
  const CsrMatrix merged = AssembleRows(n, n, threads, workspaces, row_nnz,
                                        /*row_base=*/0,
                                        "SpGemmSymmetricSum(merge)");
  if (Cancelled(options.cancel)) return options.cancel->status();
  // The mirrored full matrix roughly doubles the triangle's footprint.
  MemoryCharge mirror_charge(
      options.cancel,
      2 * merged.nnz() *
          static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)));
  if (mirror_charge.exceeded()) return options.cancel->status();
  Result<CsrMatrix> full = MirrorUpperTriangle(merged, options.num_threads);
  if (full.ok()) span.Metric("output_nnz", full->nnz());
  return full;
}

Result<CsrMatrix> MirrorUpperTriangle(const CsrMatrix& upper,
                                      int num_threads) {
  if (upper.rows() != upper.cols()) {
    return Status::InvalidArgument(
        "MirrorUpperTriangle: matrix must be square, got " +
        upper.DebugString());
  }
  const Index n = upper.rows();
  // Columns are sorted within each row, so checking the first entry of each
  // row suffices to reject below-diagonal input (O(n), not O(nnz)).
  for (Index r = 0; r < n; ++r) {
    auto cols = upper.RowCols(r);
    if (!cols.empty() && cols.front() < r) {
      return Status::InvalidArgument(
          "MirrorUpperTriangle: entry (" + std::to_string(r) + "," +
          std::to_string(cols.front()) + ") is below the diagonal");
    }
  }
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(n, 1)));

  // Counting pass over static row blocks (the CsrMatrix::Transpose scheme):
  // cursor[b][c] counts the strict-upper entries with column c in block b.
  // Each mirrored entry's final position is independent of the block
  // partition, so the result is bit-identical for every thread count.
  const int blocks = threads;
  auto block_begin = [n, blocks](int b) {
    return static_cast<Index>(static_cast<int64_t>(n) * b / blocks);
  };
  std::vector<Offset> cursor(
      static_cast<size_t>(blocks) * static_cast<size_t>(n), 0);
  ParallelFor(0, blocks, threads, [&](int64_t b) {
    Offset* counts = cursor.data() + b * static_cast<int64_t>(n);
    for (Index r = block_begin(static_cast<int>(b));
         r < block_begin(static_cast<int>(b) + 1); ++r) {
      auto cols = upper.RowCols(r);
      // Columns are sorted: everything past upper_bound(r) is strictly
      // above the diagonal, so the tail counts without per-entry compares.
      const size_t q = static_cast<size_t>(
          std::upper_bound(cols.begin(), cols.end(), r) - cols.begin());
      for (size_t p = q; p < cols.size(); ++p) {
        ++counts[static_cast<size_t>(cols[p])];
      }
    }
  });
  // strict[r] = total mirrored (strict-lower) entries landing in row r.
  // Reduced block-by-block over contiguous index chunks (vectorized int64
  // adds; integer addition commutes exactly, so the totals are identical
  // to any other reduction order).
  std::vector<Offset> strict(static_cast<size_t>(n), 0);
  ParallelForChunked(0, n, threads, [&](int64_t lo, int64_t hi) {
    for (int b = 0; b < blocks; ++b) {
      simd::AddI64(strict.data() + lo,
                   cursor.data() + static_cast<int64_t>(b) * n + lo,
                   static_cast<size_t>(hi - lo));
    }
  });
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index r = 0; r < n; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] = row_ptr[static_cast<size_t>(r)] +
                                          strict[static_cast<size_t>(r)] +
                                          upper.RowNnz(r);
  }
  // Mirrored entries fill the row prefix (their columns, the source rows,
  // are all < r); the row's own upper entries follow. Turn per-block counts
  // into exact starting cursors within each prefix.
  ParallelFor(0, n, threads, [&](int64_t c) {
    Offset run = row_ptr[static_cast<size_t>(c)];
    for (int b = 0; b < blocks; ++b) {
      Offset& slot = cursor[static_cast<size_t>(b) * static_cast<size_t>(n) +
                            static_cast<size_t>(c)];
      const Offset count = slot;
      slot = run;
      run += count;
    }
  });
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  ParallelFor(0, blocks, threads, [&](int64_t b) {
    Offset* fill = cursor.data() + b * static_cast<int64_t>(n);
    for (Index r = block_begin(static_cast<int>(b));
         r < block_begin(static_cast<int>(b) + 1); ++r) {
      auto cols = upper.RowCols(r);
      auto vals = upper.RowValues(r);
      const size_t q = static_cast<size_t>(
          std::upper_bound(cols.begin(), cols.end(), r) - cols.begin());
      for (size_t p = q; p < cols.size(); ++p) {
        const Index c = cols[p];
        const Offset dst = fill[static_cast<size_t>(c)]++;
        // Element-granular registration on purpose: disjointness of the
        // scattered destinations is a theorem about the cursor exclusive
        // scan, exactly what the auditor should re-prove at runtime.
        audit::AuditSpan audit_c(col_idx.data() + dst, 1, "mirror.col_idx");
        audit::AuditSpan audit_v(values.data() + dst, 1, "mirror.values");
        col_idx[static_cast<size_t>(dst)] = r;
        values[static_cast<size_t>(dst)] = vals[p];
      }
    }
  });
  ParallelForChunked(0, n, threads, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const size_t k = static_cast<size_t>(upper.RowNnz(static_cast<Index>(r)));
      const Offset dst =
          row_ptr[static_cast<size_t>(r)] + strict[static_cast<size_t>(r)];
      auto cols = upper.RowCols(static_cast<Index>(r));
      auto vals = upper.RowValues(static_cast<Index>(r));
      audit::AuditSpan audit_c(col_idx.data() + dst, k, "mirror.row_copy.c");
      audit::AuditSpan audit_v(values.data() + dst, k, "mirror.row_copy.v");
      std::copy_n(cols.begin(), k, col_idx.begin() + dst);
      std::copy_n(vals.begin(), k, values.begin() + dst);
    }
  });
  CsrMatrix full = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  full.ValidateStructure("MirrorUpperTriangle");
  return full;
}

Offset SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b) {
  DGC_CHECK_EQ(a.cols(), b.rows());
  Offset flops = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k : a.RowCols(r)) {
      flops += b.RowNnz(k);
    }
  }
  return flops;
}

}  // namespace dgc
