#include "linalg/spgemm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace dgc {

namespace {

/// Per-worker state for the two-pass SpGEMM: a dense accumulator plus the
/// worker's buffered output rows (row ids and concatenated cols/vals), so
/// pass 2 can copy straight into the final CSR without any per-row
/// std::vector allocations.
struct SpGemmWorkspace {
  std::vector<Scalar> accum;
  std::vector<Index> marker;
  std::vector<Index> touched;
  std::vector<Index> rows;   ///< output rows buffered by this worker
  std::vector<Index> cols;   ///< their column indices, concatenated
  std::vector<Scalar> vals;  ///< their values, concatenated

  void EnsureSize(Index n) {
    if (static_cast<Index>(marker.size()) < n) {
      accum.assign(static_cast<size_t>(n), 0.0);
      marker.assign(static_cast<size_t>(n), -1);
    }
  }
};

/// Computes one output row of C = A * B, appending the surviving entries to
/// w.cols / w.vals (sorted by column). marker[c] == row marks column c as
/// touched for the current row.
void ComputeRow(const CsrMatrix& a, const CsrMatrix& b, Index row,
                const SpGemmOptions& options, SpGemmWorkspace& w) {
  w.touched.clear();
  auto a_cols = a.RowCols(row);
  auto a_vals = a.RowValues(row);
  for (size_t i = 0; i < a_cols.size(); ++i) {
    const Index k = a_cols[i];
    const Scalar av = a_vals[i];
    auto b_cols = b.RowCols(k);
    auto b_vals = b.RowValues(k);
    for (size_t j = 0; j < b_cols.size(); ++j) {
      const Index c = b_cols[j];
      if (w.marker[static_cast<size_t>(c)] != row) {
        w.marker[static_cast<size_t>(c)] = row;
        w.accum[static_cast<size_t>(c)] = 0.0;
        w.touched.push_back(c);
      }
      w.accum[static_cast<size_t>(c)] += av * b_vals[j];
    }
  }
  std::sort(w.touched.begin(), w.touched.end());
  for (Index c : w.touched) {
    const Scalar v = w.accum[static_cast<size_t>(c)];
    if (std::abs(v) < options.threshold) continue;
    if (options.drop_diagonal && c == row) continue;
    w.cols.push_back(c);
    w.vals.push_back(v);
  }
}

}  // namespace

Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const SpGemmOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("SpGemm: inner dimensions differ (" +
                                   a.DebugString() + " * " + b.DebugString() +
                                   ")");
  }
  const Index rows = a.rows();
  const Index cols = b.cols();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(rows, 1)));

  // Pass 1: compute every output row into per-worker buffers, recording the
  // per-row nnz. Dynamic chunking keeps hub rows from imbalancing workers.
  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(rows), 0);
  ParallelForWorkers(
      0, rows, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(cols);
        for (int64_t r = lo; r < hi; ++r) {
          const size_t before = w.cols.size();
          ComputeRow(a, b, static_cast<Index>(r), options, w);
          row_nnz[static_cast<size_t>(r)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(r));
        }
      });

  // Serial prefix sum of row pointers: deterministic for any thread count.
  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] + row_nnz[static_cast<size_t>(r)];
  }

  // Pass 2: each worker copies its buffered rows into the final CSR at the
  // now-known offsets.
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  ParallelFor(0, threads, threads, [&](int64_t wi) {
    const SpGemmWorkspace& w = workspaces[static_cast<size_t>(wi)];
    size_t pos = 0;
    for (Index r : w.rows) {
      const size_t k = static_cast<size_t>(row_nnz[static_cast<size_t>(r)]);
      std::copy_n(w.cols.begin() + static_cast<long>(pos), k,
                  col_idx.begin() + row_ptr[static_cast<size_t>(r)]);
      std::copy_n(w.vals.begin() + static_cast<long>(pos), k,
                  values.begin() + row_ptr[static_cast<size_t>(r)]);
      pos += k;
    }
  });
  // Rows are sorted, deduplicated and in range by construction (ComputeRow
  // sorts `touched` and the accumulator cannot produce a column twice); the
  // O(nnz) serial Validate() pass is debug-only so Release keeps the
  // parallel speedup.
  CsrMatrix c = CsrMatrix::FromPartsUnchecked(
      rows, cols, std::move(row_ptr), std::move(col_idx), std::move(values));
  c.ValidateStructure("SpGemm");
  return c;
}

Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a, a.Transpose(options.num_threads), options);
}

Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a, const SpGemmOptions& options) {
  return SpGemm(a.Transpose(options.num_threads), a, options);
}

Offset SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b) {
  DGC_CHECK_EQ(a.cols(), b.rows());
  Offset flops = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index k : a.RowCols(r)) {
      flops += b.RowNnz(k);
    }
  }
  return flops;
}

}  // namespace dgc
