#include "linalg/power_iteration.h"

#include <algorithm>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace dgc {

CsrMatrix RowStochastic(const CsrMatrix& a) {
  CsrMatrix p = a;
  std::vector<Scalar> sums = a.RowSums();
  std::vector<Scalar> inv(sums.size());
  for (size_t i = 0; i < sums.size(); ++i) {
    inv[i] = sums[i] > 0.0 ? 1.0 / sums[i] : 0.0;
  }
  p.ScaleRows(inv);
  return p;
}

Result<PageRankResult> PageRank(const CsrMatrix& a,
                                const PageRankOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("PageRank requires a square matrix, got " +
                                   a.DebugString());
  }
  if (a.rows() == 0) {
    return Status::InvalidArgument("PageRank on an empty matrix");
  }
  if (options.teleport < 0.0 || options.teleport > 1.0) {
    return Status::InvalidArgument("teleport probability must be in [0,1]");
  }
  const Index n = a.rows();
  const size_t un = static_cast<size_t>(n);
  const CsrMatrix p = RowStochastic(a);

  // Identify dangling nodes once.
  std::vector<char> dangling(un, 0);
  for (Index i = 0; i < n; ++i) {
    if (p.RowNnz(i) == 0) dangling[static_cast<size_t>(i)] = 1;
  }

  std::vector<Scalar> pi(un, 1.0 / static_cast<Scalar>(n));
  std::vector<Scalar> next(un, 0.0);
  PageRankResult result;
  const Scalar t = options.teleport;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // next = pi^T P  (push-based: scatter each pi[i] along row i).
    std::fill(next.begin(), next.end(), 0.0);
    Scalar dangling_mass = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Scalar mass = pi[static_cast<size_t>(i)];
      if (dangling[static_cast<size_t>(i)]) {
        dangling_mass += mass;
        continue;
      }
      auto cols = p.RowCols(i);
      auto vals = p.RowValues(i);
      for (size_t j = 0; j < cols.size(); ++j) {
        next[static_cast<size_t>(cols[j])] += mass * vals[j];
      }
    }
    const Scalar base =
        t / static_cast<Scalar>(n) +
        (1.0 - t) * dangling_mass / static_cast<Scalar>(n);
    for (size_t i = 0; i < un; ++i) {
      next[i] = (1.0 - t) * next[i] + base;
    }
    const Scalar delta = L1Distance(pi, next);
    pi.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Guard against drift: renormalize to a probability vector.
  NormalizeL1(pi);
  result.pi = std::move(pi);
  return result;
}

}  // namespace dgc
