// Internal machinery shared by the in-memory SpGEMM kernels (spgemm.cc)
// and the out-of-core tiled driver (spgemm_tiled.cc): per-worker
// workspaces, the per-row Gustavson / upper-triangle kernels, and the
// two-pass row assembly. NOT part of the public API — include only from
// linalg kernel translation units.
//
// Bit-identity contract: every function here computes a row's entries as
// a pure function of (inputs, row, options) with a fixed inner k-order,
// independent of which worker runs the row, which tile it lands in, or
// how many rows the enclosing loop covers. The tiled driver leans on this:
// concatenating per-tile outputs in row order reproduces the in-memory
// kernel's CSR byte for byte.
#pragma once

#include <algorithm>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "obs/span.h"
#include "util/budget.h"
#include "util/parallel_audit.h"
#include "util/radix.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace dgc {
namespace spgemm_internal {

/// Per-worker state for the two-pass SpGEMM: a dense accumulator plus the
/// worker's buffered output rows (row ids and concatenated cols/vals), so
/// pass 2 can copy straight into the final CSR without any per-row
/// std::vector allocations.
struct SpGemmWorkspace {
  std::vector<Scalar> accum;
  std::vector<Index> marker;
  /// First-touch column list of the current row. Fixed-size buffer (every
  /// column is touched at most once per row) filled through the
  /// simd::ScatterAccumulate primitives; `touched_count` is its length.
  std::vector<Index> touched;
  std::vector<Index> sort_scratch;  ///< radix-sort ping-pong buffer
  Index touched_count = 0;
  Index dim = 0;  ///< accumulator width (radix bound for column sorting)
  std::vector<Index> rows;   ///< output rows buffered by this worker
  std::vector<Index> cols;   ///< their column indices, concatenated
  std::vector<Scalar> vals;  ///< their values, concatenated
  /// Entries dropped by the threshold filter. Each row's count is
  /// deterministic and the shards merge by addition, so the total is
  /// bit-identical for every thread count (the AllPairsStats pattern).
  int64_t dropped = 0;

  void EnsureSize(Index n) {
    if (static_cast<Index>(marker.size()) < n) {
      accum.assign(static_cast<size_t>(n), 0.0);
      marker.assign(static_cast<size_t>(n), -1);
      touched.resize(static_cast<size_t>(n));
      sort_scratch.resize(static_cast<size_t>(n));
    }
    dim = n;
  }

  /// Clears the buffered rows (between tiles) while keeping the dense
  /// accumulator, its marker state, and the `dropped` tally, which
  /// accumulates across tiles exactly like it accumulates across chunks.
  void ClearBufferedRows() {
    rows.clear();
    cols.clear();
    vals.clear();
  }

  /// Invalidates every marker stamp. Required whenever a workspace is
  /// reused for a SECOND product over the same row ids (the tiled driver's
  /// B-then-C passes): stamps are global row ids, so without the reset the
  /// C pass would see row r's B-pass stamps as "already touched", skip the
  /// first-touch zeroing, and both corrupt the values and drop entries
  /// from the touched list. First touch re-zeroes accum, so only the
  /// marker array needs clearing. O(dim).
  void ResetMarkers() { std::fill(marker.begin(), marker.end(), -1); }
};

/// Appends row `row`'s surviving accumulator entries (sorted by column) to
/// w.cols / w.vals, applying the threshold and diagonal filters. Shared by
/// the general and the upper-triangle kernels so filtering is bit-identical.
inline void EmitRow(Index row, const SpGemmOptions& options,
                    SpGemmWorkspace& w) {
  const size_t count = static_cast<size_t>(w.touched_count);
  // Unique keys, so the radix order equals the std::sort order exactly.
  RadixSortIndices(w.touched.data(), count, w.sort_scratch.data(), w.dim);
  const size_t before = w.cols.size();
  w.cols.resize(before + count);
  w.vals.resize(before + count);
  const size_t kept = simd::GatherPrune(
      w.touched.data(), count, w.accum.data(), options.threshold,
      options.drop_diagonal, row, w.cols.data() + before,
      w.vals.data() + before, &w.dropped);
  w.cols.resize(before + kept);
  w.vals.resize(before + kept);
}

/// Computes one output row of C = A * B, appending the surviving entries to
/// w.cols / w.vals (sorted by column). marker[c] == row marks column c as
/// touched for the current row.
inline void ComputeRow(const CsrMatrix& a, const CsrMatrix& b, Index row,
                       const SpGemmOptions& options, SpGemmWorkspace& w) {
  w.touched_count = 0;
  auto a_cols = a.RowCols(row);
  auto a_vals = a.RowValues(row);
  for (size_t i = 0; i < a_cols.size(); ++i) {
    const Index k = a_cols[i];
    auto b_cols = b.RowCols(k);
    auto b_vals = b.RowValues(k);
    w.touched_count += simd::ScatterAccumulate(
        a_vals[i], b_cols.data(), b_vals.data(), b_cols.size(),
        w.accum.data(), w.marker.data(), row,
        w.touched.data() + w.touched_count);
  }
  EmitRow(row, options, w);
}

/// Computes one upper-triangle row (candidates j >= row only) of the scaled
/// symmetric product U = D_r A D_c² Aᵀ D_r. `at` is the inverted index
/// (= Aᵀ). Per term the factors are evaluated as
/// (a(i,k)·row_scale[i])·col_scale[k] — the exact multiplication order a
/// ScaleRows-then-ScaleCols copy would have stored, and terms accumulate in
/// the same ascending-k order as ComputeRow, so every surviving entry is
/// bit-identical to the reference SpGemmAAt-on-a-scaled-copy path.
inline void ComputeUpperRow(const CsrMatrix& a, const CsrMatrix& at,
                            std::span<const Scalar> row_scale,
                            std::span<const Scalar> col_scale, Index row,
                            const SpGemmOptions& options,
                            SpGemmWorkspace& w) {
  w.touched_count = 0;
  auto a_cols = a.RowCols(row);
  auto a_vals = a.RowValues(row);
  const bool has_row_scale = !row_scale.empty();
  const bool has_col_scale = !col_scale.empty();
  const Scalar* rs = has_row_scale ? row_scale.data() : nullptr;
  const Scalar ri =
      has_row_scale ? row_scale[static_cast<size_t>(row)] : 1.0;
  for (size_t i = 0; i < a_cols.size(); ++i) {
    const Index k = a_cols[i];
    const Scalar ck =
        has_col_scale ? col_scale[static_cast<size_t>(k)] : 1.0;
    Scalar av = a_vals[i];
    if (has_row_scale) av *= ri;
    if (has_col_scale) av *= ck;
    auto t_cols = at.RowCols(k);
    auto t_vals = at.RowValues(k);
    // Only candidates j >= row contribute to the upper triangle; the lower
    // triangle is recovered by mirroring. Columns are sorted, so the first
    // eligible candidate is found by binary search. The primitive evaluates
    // bv = (t_vals[q] * row_scale[j]) * ck and accum[j] += av * bv — the
    // same multiply order as the reference ScaleRows/ScaleCols path.
    const size_t q = static_cast<size_t>(
        std::lower_bound(t_cols.begin(), t_cols.end(), row) - t_cols.begin());
    w.touched_count += simd::ScatterAccumulateScaled(
        av, rs, has_col_scale, ck, t_cols.data() + q, t_vals.data() + q,
        t_cols.size() - q, w.accum.data(), w.marker.data(), row,
        w.touched.data() + w.touched_count);
  }
  EmitRow(row, options, w);
}

/// Two-pass assembly shared by the row-parallel kernels: pass 1 ran already
/// (per-worker buffered rows + row_nnz), this prefix-sums the row pointers
/// and copies every buffered row to its final offset in parallel.
///
/// `row_base` maps buffered global row ids to local output rows: the
/// returned CSR has `rows` rows covering global rows
/// [row_base, row_base + rows), and `row_nnz` is indexed locally. The
/// in-memory kernels pass row_base = 0; the tiled driver passes the tile's
/// first row.
inline CsrMatrix AssembleRows(Index rows, Index cols, int threads,
                              const std::vector<SpGemmWorkspace>& workspaces,
                              const std::vector<Offset>& row_nnz,
                              Index row_base, const char* context) {
  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] + row_nnz[static_cast<size_t>(r)];
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  ParallelFor(0, threads, threads, [&](int64_t wi) {
    const SpGemmWorkspace& w = workspaces[static_cast<size_t>(wi)];
    size_t pos = 0;
    for (Index r : w.rows) {
      const size_t local = static_cast<size_t>(r - row_base);
      const size_t k = static_cast<size_t>(row_nnz[local]);
      const size_t at = static_cast<size_t>(row_ptr[local]);
      audit::AuditSpan audit_c(col_idx.data() + at, k, "assemble.col_idx");
      audit::AuditSpan audit_v(values.data() + at, k, "assemble.values");
      std::copy_n(w.cols.begin() + static_cast<long>(pos), k,
                  col_idx.begin() + static_cast<long>(at));
      std::copy_n(w.vals.begin() + static_cast<long>(pos), k,
                  values.begin() + static_cast<long>(at));
      pos += k;
    }
  });
  // Rows are sorted, deduplicated and in range by construction (EmitRow
  // sorts `touched`; the accumulator cannot produce a column twice); the
  // O(nnz) serial Validate() pass is debug-only so Release keeps the
  // parallel speedup.
  CsrMatrix c = CsrMatrix::FromPartsUnchecked(
      rows, cols, std::move(row_ptr), std::move(col_idx), std::move(values));
  c.ValidateStructure(context);
  return c;
}

/// Chunk-granularity poll used inside the row-parallel loop bodies and at
/// stage boundaries. Null token: no work at all.
inline bool Cancelled(CancelToken* cancel) {
  return cancel != nullptr && cancel->Expired();
}

/// Bytes buffered by pass 1 across all workers plus the final CSR arrays —
/// the dominant transient working set of the two-pass assembly.
inline int64_t AssemblyBytes(Index rows,
                             const std::vector<SpGemmWorkspace>& workspaces) {
  int64_t entries = 0;
  for (const SpGemmWorkspace& w : workspaces) {
    entries += static_cast<int64_t>(w.cols.size());
  }
  return 2 * entries *
             static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)) +
         (static_cast<int64_t>(rows) + 1) * static_cast<int64_t>(sizeof(Offset));
}

/// Attaches the shared post-pass-1 instrumentation: deterministic
/// pruned-entry total plus the perf-class worker load picture. No-op on a
/// dead span.
inline void RecordPassStats(StageSpan& span,
                            const std::vector<SpGemmWorkspace>& workspaces,
                            int threads) {
  if (!span.live()) return;
  int64_t dropped = 0;
  size_t rows_min = static_cast<size_t>(-1);
  size_t rows_max = 0;
  for (const SpGemmWorkspace& w : workspaces) {
    dropped += w.dropped;
    rows_min = std::min(rows_min, w.rows.size());
    rows_max = std::max(rows_max, w.rows.size());
  }
  span.Metric("pruned_entries", dropped);
  span.PerfMetric("workers", threads);
  span.PerfMetric("rows_per_worker_min", static_cast<int64_t>(rows_min));
  span.PerfMetric("rows_per_worker_max", static_cast<int64_t>(rows_max));
}

}  // namespace spgemm_internal
}  // namespace dgc
