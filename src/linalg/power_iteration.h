// Random-walk machinery: row-stochastic normalization and the PageRank-style
// power iteration used by the Random-walk symmetrization (Section 3.2).
#pragma once

#include <vector>

#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// \brief Returns the transition matrix P of the natural random walk on A:
/// each nonzero row divided by its sum. Zero rows (dangling nodes) stay
/// zero; the power iteration redistributes their mass uniformly.
CsrMatrix RowStochastic(const CsrMatrix& a);

/// Options for the stationary-distribution computation.
struct PageRankOptions {
  /// Teleport probability. The paper uses 0.05 (Section 4.2).
  Scalar teleport = 0.05;
  /// Convergence tolerance on the L1 change between iterates.
  Scalar tolerance = 1e-10;
  /// Iteration cap.
  int max_iterations = 200;
};

/// Result of a PageRank computation.
struct PageRankResult {
  /// The stationary distribution pi (sums to 1).
  std::vector<Scalar> pi;
  /// Iterations actually performed.
  int iterations = 0;
  /// Whether the L1 tolerance was reached within max_iterations.
  bool converged = false;
};

/// \brief Computes pi with pi = (1-t) * (pi P + dangling/n) + t/n by power
/// iteration, where P = RowStochastic(a).
///
/// Returns InvalidArgument for non-square or empty input. A run that hits
/// max_iterations still returns a (best-effort) result with
/// converged == false, mirroring practical PageRank usage.
Result<PageRankResult> PageRank(const CsrMatrix& a,
                                const PageRankOptions& options = {});

}  // namespace dgc
