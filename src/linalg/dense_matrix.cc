#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dgc {

void JacobiEigenSymmetric(const DenseMatrix& a,
                          std::vector<Scalar>* eigenvalues,
                          DenseMatrix* eigenvectors) {
  const Index n = a.rows();
  DGC_CHECK_EQ(a.rows(), a.cols());
  DenseMatrix m = a;
  DenseMatrix v(n, n, 0.0);
  for (Index i = 0; i < n; ++i) v(i, i) = 1.0;

  const int kMaxSweeps = 100;
  const Scalar kTol = 1e-24;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    // Off-diagonal Frobenius mass; stop when annihilated.
    Scalar off = 0.0;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < kTol) break;

    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Scalar apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const Scalar app = m(p, p);
        const Scalar aqq = m(q, q);
        const Scalar tau = (aqq - app) / (2.0 * apq);
        const Scalar t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const Scalar c = 1.0 / std::sqrt(1.0 + t * t);
        const Scalar s = t * c;
        // Apply the rotation G(p, q, theta) on both sides.
        for (Index k = 0; k < n; ++k) {
          const Scalar mkp = m(k, p);
          const Scalar mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (Index k = 0; k < n; ++k) {
          const Scalar mpk = m(p, k);
          const Scalar mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (Index k = 0; k < n; ++k) {
          const Scalar vkp = v(k, p);
          const Scalar vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&m](Index x, Index y) { return m(x, x) > m(y, y); });

  eigenvalues->resize(static_cast<size_t>(n));
  *eigenvectors = DenseMatrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<size_t>(j)];
    (*eigenvalues)[static_cast<size_t>(j)] = m(src, src);
    for (Index i = 0; i < n; ++i) {
      (*eigenvectors)(i, j) = v(i, src);
    }
  }
}

}  // namespace dgc
