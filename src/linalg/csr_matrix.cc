#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace dgc {

Result<CsrMatrix> CsrMatrix::FromParts(Index rows, Index cols,
                                       std::vector<Offset> row_ptr,
                                       std::vector<Index> col_idx,
                                       std::vector<Scalar> values) {
  CsrMatrix m(rows, cols, std::move(row_ptr), std::move(col_idx),
              std::move(values));
  DGC_RETURN_IF_ERROR(m.Validate());
  return m;
}

CsrMatrix CsrMatrix::FromPartsUnchecked(Index rows, Index cols,
                                        std::vector<Offset> row_ptr,
                                        std::vector<Index> col_idx,
                                        std::vector<Scalar> values) {
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

void CsrMatrix::ValidateStructure(const char* context) const {
#if DGC_DCHECKS_ENABLED
  const Status status = Validate();
  DGC_CHECK(status.ok()) << context << ": structurally invalid matrix ("
                         << DebugString() << "): " << status;
#else
  (void)context;
#endif
}

Result<CsrMatrix> CsrMatrix::FromTriplets(Index rows, Index cols,
                                          std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange("triplet (" + std::to_string(t.row) + "," +
                                std::to_string(t.col) +
                                ") outside matrix of shape " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols));
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Combine duplicates in place.
  size_t out = 0;
  for (size_t i = 0; i < triplets.size(); ++i) {
    if (out > 0 && triplets[out - 1].row == triplets[i].row &&
        triplets[out - 1].col == triplets[i].col) {
      triplets[out - 1].value += triplets[i].value;
    } else {
      triplets[out++] = triplets[i];
    }
  }
  triplets.resize(out);

  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> col_idx(out);
  std::vector<Scalar> values(out);
  for (const Triplet& t : triplets) ++row_ptr[static_cast<size_t>(t.row) + 1];
  for (Index r = 0; r < rows; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] += row_ptr[static_cast<size_t>(r)];
  }
  for (size_t i = 0; i < out; ++i) {
    col_idx[i] = triplets[i].col;
    values[i] = triplets[i].value;
  }
  CsrMatrix m = FromPartsUnchecked(rows, cols, std::move(row_ptr),
                                   std::move(col_idx), std::move(values));
  m.ValidateStructure("CsrMatrix::FromTriplets");
  return m;
}

CsrMatrix CsrMatrix::Identity(Index n) {
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1);
  std::vector<Index> col_idx(static_cast<size_t>(n));
  std::vector<Scalar> values(static_cast<size_t>(n), 1.0);
  for (Index i = 0; i <= n; ++i) row_ptr[static_cast<size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) col_idx[static_cast<size_t>(i)] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::Zero(Index rows, Index cols) {
  return CsrMatrix(rows, cols,
                   std::vector<Offset>(static_cast<size_t>(rows) + 1, 0), {},
                   {});
}

Scalar CsrMatrix::At(Index i, Index j) const {
  DGC_CHECK(i >= 0 && i < rows_);
  DGC_CHECK(j >= 0 && j < cols_);
  auto cols = RowCols(i);
  auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[static_cast<size_t>(row_ptr_[i] + (it - cols.begin()))];
}

Status CsrMatrix::Validate() const {
  if (rows_ < 0 || cols_ < 0) {
    return Status::InvalidArgument("negative dimensions");
  }
  if (row_ptr_.size() != static_cast<size_t>(rows_) + 1) {
    return Status::InvalidArgument("row_ptr size != rows+1");
  }
  if (row_ptr_.front() != 0) {
    return Status::InvalidArgument("row_ptr[0] != 0");
  }
  if (row_ptr_.back() != static_cast<Offset>(col_idx_.size()) ||
      col_idx_.size() != values_.size()) {
    return Status::InvalidArgument("array sizes inconsistent with row_ptr");
  }
  // Row pointers must be vetted in full before they are used to index
  // col_idx_ below: with a corrupt interior pointer the column loop itself
  // would read out of bounds. Monotonicity plus the front()/back() checks
  // above imply every pointer is within [0, nnz].
  for (Index r = 0; r < rows_; ++r) {
    if (row_ptr_[static_cast<size_t>(r) + 1] <
        row_ptr_[static_cast<size_t>(r)]) {
      return Status::InvalidArgument("row_ptr not non-decreasing at row " +
                                     std::to_string(r));
    }
  }
  for (Index r = 0; r < rows_; ++r) {
    Index prev = -1;
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      Index c = col_idx_[static_cast<size_t>(p)];
      if (c < 0 || c >= cols_) {
        return Status::OutOfRange("column index " + std::to_string(c) +
                                  " out of range in row " + std::to_string(r));
      }
      if (c <= prev) {
        return Status::InvalidArgument(
            "columns not strictly increasing in row " + std::to_string(r));
      }
      prev = c;
    }
  }
  return Status::OK();
}

CsrMatrix CsrMatrix::Transpose(int num_threads) const {
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(rows_, 1)));
  std::vector<Offset> t_row_ptr(static_cast<size_t>(cols_) + 1, 0);
  std::vector<Index> t_col_idx(col_idx_.size());
  std::vector<Scalar> t_values(values_.size());
  if (threads <= 1) {
    for (Index c : col_idx_) ++t_row_ptr[static_cast<size_t>(c) + 1];
    for (Index c = 0; c < cols_; ++c) {
      t_row_ptr[static_cast<size_t>(c) + 1] +=
          t_row_ptr[static_cast<size_t>(c)];
    }
    std::vector<Offset> fill(t_row_ptr.begin(), t_row_ptr.end() - 1);
    for (Index r = 0; r < rows_; ++r) {
      for (Offset p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        Index c = col_idx_[static_cast<size_t>(p)];
        Offset dst = fill[static_cast<size_t>(c)]++;
        t_col_idx[static_cast<size_t>(dst)] = r;
        t_values[static_cast<size_t>(dst)] = values_[static_cast<size_t>(p)];
      }
    }
    // Rows of the transpose are filled in increasing source-row order, so
    // columns are already sorted.
    CsrMatrix t = FromPartsUnchecked(cols_, rows_, std::move(t_row_ptr),
                                     std::move(t_col_idx),
                                     std::move(t_values));
    t.ValidateStructure("CsrMatrix::Transpose(serial)");
    return t;
  }
  // Parallel counting sort over static row blocks. Each entry (r, c) lands
  // at t_row_ptr[c] + #(entries with column c in rows < r) — a position
  // that does not depend on the block partition, so the result is identical
  // to the serial path for every thread count.
  const int blocks = threads;
  auto block_begin = [this, blocks](int b) {
    return static_cast<Index>(static_cast<int64_t>(rows_) * b / blocks);
  };
  // Per-block column counts (cursor[b][c] at index b * cols_ + c).
  std::vector<Offset> cursor(static_cast<size_t>(blocks) *
                                 static_cast<size_t>(cols_),
                             0);
  ParallelFor(0, blocks, threads, [&](int64_t b) {
    Offset* counts = cursor.data() + b * static_cast<int64_t>(cols_);
    for (Index r = block_begin(static_cast<int>(b));
         r < block_begin(static_cast<int>(b) + 1); ++r) {
      for (Offset p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        ++counts[col_idx_[static_cast<size_t>(p)]];
      }
    }
  });
  ParallelFor(0, cols_, threads, [&](int64_t c) {
    Offset total = 0;
    for (int b = 0; b < blocks; ++b) {
      total += cursor[static_cast<size_t>(b) * static_cast<size_t>(cols_) +
                      static_cast<size_t>(c)];
    }
    t_row_ptr[static_cast<size_t>(c) + 1] = total;
  });
  for (Index c = 0; c < cols_; ++c) {
    t_row_ptr[static_cast<size_t>(c) + 1] += t_row_ptr[static_cast<size_t>(c)];
  }
  // Turn counts into exact per-block starting cursors within each output
  // row: block b's entries for column c start after blocks < b.
  ParallelFor(0, cols_, threads, [&](int64_t c) {
    Offset run = t_row_ptr[static_cast<size_t>(c)];
    for (int b = 0; b < blocks; ++b) {
      Offset& slot =
          cursor[static_cast<size_t>(b) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
      const Offset count = slot;
      slot = run;
      run += count;
    }
  });
  ParallelFor(0, blocks, threads, [&](int64_t b) {
    Offset* fill = cursor.data() + b * static_cast<int64_t>(cols_);
    for (Index r = block_begin(static_cast<int>(b));
         r < block_begin(static_cast<int>(b) + 1); ++r) {
      for (Offset p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        const Index c = col_idx_[static_cast<size_t>(p)];
        const Offset dst = fill[c]++;
        t_col_idx[static_cast<size_t>(dst)] = r;
        t_values[static_cast<size_t>(dst)] = values_[static_cast<size_t>(p)];
      }
    }
  });
  CsrMatrix t = FromPartsUnchecked(cols_, rows_, std::move(t_row_ptr),
                                   std::move(t_col_idx), std::move(t_values));
  t.ValidateStructure("CsrMatrix::Transpose(parallel)");
  return t;
}

std::vector<Scalar> CsrMatrix::RowSums() const {
  std::vector<Scalar> sums(static_cast<size_t>(rows_), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    Scalar s = 0.0;
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      s += values_[static_cast<size_t>(p)];
    }
    sums[static_cast<size_t>(r)] = s;
  }
  return sums;
}

std::vector<Scalar> CsrMatrix::ColSums() const {
  std::vector<Scalar> sums(static_cast<size_t>(cols_), 0.0);
  for (size_t p = 0; p < col_idx_.size(); ++p) {
    sums[static_cast<size_t>(col_idx_[p])] += values_[p];
  }
  return sums;
}

std::vector<Offset> CsrMatrix::RowCounts() const {
  std::vector<Offset> counts(static_cast<size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) counts[static_cast<size_t>(r)] = RowNnz(r);
  return counts;
}

std::vector<Offset> CsrMatrix::ColCounts() const {
  std::vector<Offset> counts(static_cast<size_t>(cols_), 0);
  for (Index c : col_idx_) ++counts[static_cast<size_t>(c)];
  return counts;
}

void CsrMatrix::ScaleRows(std::span<const Scalar> scale) {
  DGC_CHECK_EQ(static_cast<Index>(scale.size()), rows_);
  for (Index r = 0; r < rows_; ++r) {
    const Scalar s = scale[static_cast<size_t>(r)];
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      values_[static_cast<size_t>(p)] *= s;
    }
  }
}

void CsrMatrix::ScaleCols(std::span<const Scalar> scale) {
  DGC_CHECK_EQ(static_cast<Index>(scale.size()), cols_);
  for (size_t p = 0; p < col_idx_.size(); ++p) {
    values_[p] *= scale[static_cast<size_t>(col_idx_[p])];
  }
}

CsrMatrix CsrMatrix::Pruned(Scalar threshold, bool drop_diagonal) const {
  // Exact counting pass first, so the output arrays are allocated at their
  // final size instead of growing (and over-reserving) via push_back.
  std::vector<Offset> new_row_ptr(static_cast<size_t>(rows_) + 1, 0);
  for (Index r = 0; r < rows_; ++r) {
    Offset kept = 0;
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      const Index c = col_idx_[static_cast<size_t>(p)];
      const Scalar v = values_[static_cast<size_t>(p)];
      if (std::abs(v) < threshold) continue;
      if (drop_diagonal && c == r) continue;
      ++kept;
    }
    new_row_ptr[static_cast<size_t>(r) + 1] =
        new_row_ptr[static_cast<size_t>(r)] + kept;
  }
  std::vector<Index> new_col_idx(static_cast<size_t>(new_row_ptr.back()));
  std::vector<Scalar> new_values(static_cast<size_t>(new_row_ptr.back()));
  size_t out = 0;
  for (Index r = 0; r < rows_; ++r) {
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      const Index c = col_idx_[static_cast<size_t>(p)];
      const Scalar v = values_[static_cast<size_t>(p)];
      if (std::abs(v) < threshold) continue;
      if (drop_diagonal && c == r) continue;
      new_col_idx[out] = c;
      new_values[out] = v;
      ++out;
    }
  }
  CsrMatrix pruned =
      FromPartsUnchecked(rows_, cols_, std::move(new_row_ptr),
                         std::move(new_col_idx), std::move(new_values));
  pruned.ValidateStructure("CsrMatrix::Pruned");
  return pruned;
}

Result<CsrMatrix> CsrMatrix::PlusIdentity() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("PlusIdentity requires a square matrix");
  }
  return Add(*this, Identity(rows_));
}

Result<CsrMatrix> CsrMatrix::Add(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("Add: shape mismatch " + a.DebugString() +
                                   " vs " + b.DebugString());
  }
  // Exact counting pass over the column structure (cheap two-pointer merge,
  // no values touched), so the output arrays are allocated at their final
  // size instead of growing through push_back on the hot symmetrization
  // path.
  std::vector<Offset> row_ptr(static_cast<size_t>(a.rows()) + 1, 0);
  for (Index r = 0; r < a.rows(); ++r) {
    auto ac = a.RowCols(r);
    auto bc = b.RowCols(r);
    size_t i = 0, j = 0;
    Offset merged = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        ++j;
      } else {
        ++i;
        ++j;
      }
      ++merged;
    }
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] + merged;
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  size_t out = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    auto ac = a.RowCols(r);
    auto av = a.RowValues(r);
    auto bc = b.RowCols(r);
    auto bv = b.RowValues(r);
    size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        col_idx[out] = ac[i];
        values[out] = av[i];
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        col_idx[out] = bc[j];
        values[out] = bv[j];
        ++j;
      } else {
        col_idx[out] = ac[i];
        values[out] = av[i] + bv[j];
        ++i;
        ++j;
      }
      ++out;
    }
  }
  CsrMatrix sum = FromPartsUnchecked(a.rows(), a.cols(), std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
  sum.ValidateStructure("CsrMatrix::Add");
  return sum;
}

void CsrMatrix::Multiply(std::span<const Scalar> x,
                         std::span<Scalar> y) const {
  DGC_CHECK_EQ(static_cast<Index>(x.size()), cols_);
  DGC_CHECK_EQ(static_cast<Index>(y.size()), rows_);
  for (Index r = 0; r < rows_; ++r) {
    Scalar acc = 0.0;
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      acc += values_[static_cast<size_t>(p)] *
             x[static_cast<size_t>(col_idx_[static_cast<size_t>(p)])];
    }
    y[static_cast<size_t>(r)] = acc;
  }
}

void CsrMatrix::MultiplyTranspose(std::span<const Scalar> x,
                                  std::span<Scalar> y) const {
  DGC_CHECK_EQ(static_cast<Index>(x.size()), rows_);
  DGC_CHECK_EQ(static_cast<Index>(y.size()), cols_);
  std::fill(y.begin(), y.end(), 0.0);
  for (Index r = 0; r < rows_; ++r) {
    const Scalar xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      y[static_cast<size_t>(col_idx_[static_cast<size_t>(p)])] +=
          values_[static_cast<size_t>(p)] * xr;
    }
  }
}

bool CsrMatrix::IsSymmetric(Scalar tol) const {
  if (rows_ != cols_) return false;
  CsrMatrix t = Transpose();
  if (t.row_ptr_ != row_ptr_ || t.col_idx_ != col_idx_) return false;
  for (size_t p = 0; p < values_.size(); ++p) {
    if (std::abs(values_[p] - t.values_[p]) > tol) return false;
  }
  return true;
}

std::vector<Scalar> CsrMatrix::ToDense() const {
  std::vector<Scalar> dense(static_cast<size_t>(rows_) *
                                static_cast<size_t>(cols_),
                            0.0);
  for (Index r = 0; r < rows_; ++r) {
    for (Offset p = row_ptr_[static_cast<size_t>(r)];
         p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
      dense[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
            static_cast<size_t>(col_idx_[static_cast<size_t>(p)])] =
          values_[static_cast<size_t>(p)];
    }
  }
  return dense;
}

std::string CsrMatrix::DebugString() const {
  std::ostringstream os;
  os << "CsrMatrix " << rows_ << "x" << cols_ << ", nnz=" << nnz();
  return os.str();
}

}  // namespace dgc
