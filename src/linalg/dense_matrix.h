// Small dense row-major matrix used by the spectral baselines (embedding
// matrices, projected eigenproblems) and k-means. Not intended for large n.
#pragma once

#include <span>
#include <vector>

#include "linalg/types.h"
#include "util/logging.h"

namespace dgc {

/// \brief Row-major dense matrix of Scalars.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(Index rows, Index cols, Scalar fill = 0.0)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    DGC_CHECK_GE(rows, 0);
    DGC_CHECK_GE(cols, 0);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  Scalar& operator()(Index r, Index c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  Scalar operator()(Index r, Index c) const {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  /// Row r as a contiguous span.
  std::span<Scalar> Row(Index r) {
    return std::span<Scalar>(
        data_.data() + static_cast<size_t>(r) * static_cast<size_t>(cols_),
        static_cast<size_t>(cols_));
  }
  std::span<const Scalar> Row(Index r) const {
    return std::span<const Scalar>(
        data_.data() + static_cast<size_t>(r) * static_cast<size_t>(cols_),
        static_cast<size_t>(cols_));
  }

  std::span<const Scalar> data() const { return data_; }
  std::span<Scalar> mutable_data() { return data_; }

  bool operator==(const DenseMatrix&) const = default;

 private:
  Index rows_;
  Index cols_;
  std::vector<Scalar> data_;
};

/// \brief Eigendecomposition of a small dense symmetric matrix via cyclic
/// Jacobi rotations.
///
/// On return, `eigenvalues` holds all eigenvalues in descending order and
/// column j of `eigenvectors` (an n x n matrix) is the unit eigenvector for
/// eigenvalues[j]. Input must be symmetric; only the upper triangle is read.
/// Converges for any symmetric matrix; cost O(n^3) with a small constant —
/// fine for the <=200-dim projected problems we solve.
void JacobiEigenSymmetric(const DenseMatrix& a,
                          std::vector<Scalar>* eigenvalues,
                          DenseMatrix* eigenvectors);

}  // namespace dgc
