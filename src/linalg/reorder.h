// Row-reordering support for the similarity-product hot path (ROADMAP
// item 3: locality optimization of the SpGEMM kernels).
//
// The dense accumulator of SpGemmAAtSymmetric is indexed by candidate row
// id; on power-law graphs the candidates of a row are scattered across the
// whole index range, so every accumulator update is a cache miss once n
// exceeds the L2. A bandwidth-reducing permutation (reverse Cuthill-McKee
// on the pattern of A + Aᵀ, or a degree sort) clusters the candidates of
// neighbouring rows, shrinking the live accumulator window.
//
// Bit-identity contract. A full symmetric permutation P·M·Pᵀ would change
// the inner-product summation order and therefore the floating-point
// results. The similarity products instead permute ROWS ONLY of each
// factor: for B = (scaled A)(scaled A)ᵀ the kernel runs on P·A, whose rows
// still accumulate over the original column index k in ascending-k order,
// so every surviving entry's value is bit-identical to the unpermuted run —
// it merely appears at position (p(i), p(j)). UnpermuteUpperTriangle then
// maps each entry back to the original index space (IEEE multiplication is
// commutative bit-for-bit, so entries whose orientation flipped are
// unchanged too), and everything downstream of the product is untouched.
// Pipelines with reorder enabled therefore produce byte-identical output to
// reorder-off runs; the golden tests pin this.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "util/result.h"

namespace dgc {

/// Row-ordering strategy for the similarity products.
enum class ReorderMethod {
  kNone,    ///< identity order (the default)
  kDegree,  ///< ascending (degree, id) sort on the pattern of A + Aᵀ
  kRcm,     ///< reverse Cuthill-McKee on the pattern of A + Aᵀ
};

/// Display name ("none", "degree", "rcm").
std::string_view ReorderMethodName(ReorderMethod method);

/// Parses a name (case-insensitive). NotFound on unknown input.
Result<ReorderMethod> ParseReorderMethod(std::string_view name);

/// All permutations below are new-to-old: row i of the permuted matrix is
/// row perm[i] of the original. All builders are deterministic (ties break
/// on vertex id) and run on the undirected pattern of A + Aᵀ, supplied as
/// the matrix and its transpose. Requires a square `a` with
/// at = a.Transpose().

/// Ascending (degree, id) vertex order.
std::vector<Index> DegreePermutation(const CsrMatrix& a, const CsrMatrix& at);

/// Reverse Cuthill-McKee: per component, BFS from a minimum-degree seed
/// with neighbours visited in ascending (degree, id) order, then the whole
/// order reversed.
std::vector<Index> RcmPermutation(const CsrMatrix& a, const CsrMatrix& at);

/// Dispatches on `method`; kNone returns the identity permutation.
std::vector<Index> BuildReorderPermutation(ReorderMethod method,
                                           const CsrMatrix& a,
                                           const CsrMatrix& at);

/// inv[perm[i]] = i. `perm` must be a permutation of [0, perm.size()).
std::vector<Index> InvertPermutation(std::span<const Index> perm);

/// Row permutation only: row i of the result is row perm[i] of `a`, column
/// indices untouched (O(nnz) copy). This is the bit-identity-preserving
/// transform the similarity products use.
CsrMatrix PermuteRows(const CsrMatrix& a, std::span<const Index> perm);

/// Full symmetric permutation P·A·Pᵀ of a square matrix: rows reordered by
/// `perm` and columns relabelled through its inverse (rows re-sorted by new
/// column id). Changes downstream summation orders — use PermuteRows on the
/// similarity path; this exists for clustering a permuted graph wholesale.
CsrMatrix PermuteSymmetric(const CsrMatrix& a, std::span<const Index> perm);

/// Maps an upper-triangle matrix computed in permuted row space back to the
/// original index space: entry (i, j, v) moves to
/// (min(perm[i], perm[j]), max(perm[i], perm[j]), v), values bit-untouched.
/// The result is again upper-triangular with sorted rows.
CsrMatrix UnpermuteUpperTriangle(const CsrMatrix& upper,
                                 std::span<const Index> perm,
                                 int num_threads = 1);

/// Undoes a row permutation on per-vertex labels at pipeline exit:
/// out[perm[i]] = labels[i].
std::vector<Index> UnpermuteLabels(std::span<const Index> labels,
                                   std::span<const Index> perm);

/// SpGemmAAtSymmetric on row-permuted factors: permutes the rows of `a`
/// (and of `row_scale`) by `perm`, materializes the permuted transpose,
/// runs the upper-triangle product in permuted space for accumulator
/// locality, and un-permutes the resulting triangle back to the original
/// index space. Bit-identical output to SpGemmAAtSymmetric(a, ...) by the
/// contract above. `col_scale` indexes the (unpermuted) inner dimension.
Result<CsrMatrix> SpGemmAAtSymmetricReordered(const CsrMatrix& a,
                                              std::span<const Scalar> row_scale,
                                              std::span<const Scalar> col_scale,
                                              const SpGemmOptions& options,
                                              std::span<const Index> perm);

}  // namespace dgc
