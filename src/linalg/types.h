// Fundamental scalar/index types shared across the library.
#pragma once

#include <cstdint>

namespace dgc {

/// Vertex / row / column index. Graphs up to ~2B vertices.
using Index = int32_t;

/// Edge / nonzero offset. Edge counts may exceed 32 bits.
using Offset = int64_t;

/// Edge weight / matrix value.
using Scalar = double;

/// A single (row, col, value) matrix entry used during construction.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Scalar value = 0.0;

  bool operator==(const Triplet&) const = default;
};

}  // namespace dgc
