// Out-of-core tiled execution of the fused symmetric SpGEMM pipeline
// (docs/OUT_OF_CORE.md): the row space is partitioned into blocks sized
// from a byte budget, each block runs through the exact per-row kernels of
// spgemm.cc (unchanged inner k-order), finished upper-triangle blocks are
// spilled to a temp-file spool, and one final sequential pass stitches the
// spool into the mirrored output CSR.
//
// Because every row is a pure function of (A, Aᵀ, scales, row, options)
// and tiles concatenate in row order, the result is bit-identical to the
// in-memory SpGemmAAtSymmetric + SpGemmSymmetricSum path at any thread
// count and any tile size — only the peak memory differs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// Options for the tiled symmetric product-sum driver.
struct TiledSymmetricSumOptions {
  /// Per-product magnitude threshold (the in-memory path's
  /// product_options.threshold; the degree-discounted symmetrization uses
  /// prune_threshold / 2 here).
  Scalar product_threshold = 0.0;
  /// Drop diagonal entries of each product triangle.
  bool product_drop_diagonal = false;
  /// Threshold applied to the merged sum B + C before mirroring.
  Scalar sum_threshold = 0.0;
  /// Drop diagonal entries of the merged sum.
  bool sum_drop_diagonal = false;

  /// Threads for the row-parallel tile passes (SpGemmOptions semantics:
  /// 1 = serial, 0 = one per core). Bit-identical for every setting.
  int num_threads = 1;

  /// Fixed tile height in rows; 0 (default) derives the height from
  /// `max_memory_bytes`. Tests and benches pin this to force tile counts.
  Index tile_rows = 0;
  /// Byte budget the row partition is derived from when tile_rows == 0
  /// (typically ResourceBudget::max_memory_bytes). 0 falls back to a
  /// fixed default tile budget.
  int64_t max_memory_bytes = 0;
  /// Directory for the spool file; empty uses the system temp directory.
  std::string spill_dir;

  /// Optional observability sink: records a "tiled_spgemm" stage span with
  /// tile-count and spill-bytes metrics.
  MetricsRegistry* metrics = nullptr;
  /// Optional cooperative cancellation / memory ledger (util/budget.h).
  CancelToken* cancel = nullptr;
};

/// Deterministic row partition for the tiled driver: `cuts` holds the tile
/// boundaries (cuts.front() == 0, cuts.back() == rows, strictly
/// increasing). The partition is a pure function of the inputs and
/// options — it never depends on scheduling.
struct TilePlan {
  std::vector<Index> cuts;
  /// The per-tile transient-byte target the cuts were derived from
  /// (0 when `tile_rows` pinned the partition).
  int64_t tile_budget_bytes = 0;
};

/// \brief Per-row upper bounds on the entries of the upper-triangle
/// product over (a, at): est[r] = min(rows - r, Σ_{k ∈ a.row(r)}
/// nnz(at.row(k))). O(nnz(a)); saturates instead of overflowing.
std::vector<int64_t> EstimateUpperRowEntries(const CsrMatrix& a,
                                             const CsrMatrix& at);

/// \brief Plans the row partition for TiledSymmetricProductSum: fixed
/// `tile_rows` cuts when pinned, otherwise greedy accumulation of the
/// per-row cost model (docs/OUT_OF_CORE.md) against the budget-derived
/// per-tile byte target. A single row always fits (a hub row larger than
/// the whole budget gets its own tile; the runtime ledger still governs).
TilePlan PlanRowTiles(const CsrMatrix& a, const CsrMatrix& at,
                      const TiledSymmetricSumOptions& options);

/// \brief Conservative estimate of the memory-ledger peak the *in-memory*
/// fused path (two SpGemmAAtSymmetric calls + SpGemmSymmetricSum) would
/// charge for this input: accumulators plus the assembly bytes of the
/// larger product, both computed from the EstimateUpperRowEntries upper
/// bounds. Used by the auto-enable heuristic: an estimate over budget
/// means the in-memory path *could* trip kResourceExhausted, so the
/// caller degrades to tiling (which never changes the result, only the
/// footprint).
int64_t EstimateInMemorySymmetricSumBytes(const CsrMatrix& a,
                                          const CsrMatrix& at,
                                          int num_threads);

/// \brief Full out-of-core fused symmetrization core:
///
///   mirror(prune(B + C)),  B = upper(D_br A D_bc² Aᵀ D_br) over (a, at),
///                          C = upper(D_cr Aᵀ D_cc² A D_cr) over (at, a),
///
/// computed tile-by-tile: each row block runs the fused upper-row kernel
/// for both products, merges and prunes the block, and spills it to the
/// spool; the final pass stitches the spool into the merged triangle and
/// mirrors it. Empty scale spans skip that scaling (the bibliometric
/// case). `a` must be square and `at` its transpose.
///
/// Output is bit-identical to
///   SpGemmSymmetricSum(SpGemmAAtSymmetric(a, ..., &at),
///                      SpGemmAAtSymmetric(at, ..., &a))
/// at any thread count and tile size.
Result<CsrMatrix> TiledSymmetricProductSum(
    const CsrMatrix& a, const CsrMatrix& at,
    std::span<const Scalar> b_row_scale, std::span<const Scalar> b_col_scale,
    std::span<const Scalar> c_row_scale, std::span<const Scalar> c_col_scale,
    const TiledSymmetricSumOptions& options);

/// \brief Tiled (in-memory, no spool) variant of SpGemmAAtSymmetric:
/// computes the upper triangle in row blocks of `tile_rows` and
/// concatenates them. Bit-identical to SpGemmAAtSymmetric for every
/// tile_rows >= 1; exists so tests and benches can isolate the tiling
/// overhead from spool I/O.
Result<CsrMatrix> SpGemmAAtSymmetricTiled(const CsrMatrix& a,
                                          std::span<const Scalar> row_scale,
                                          std::span<const Scalar> col_scale,
                                          const SpGemmOptions& options,
                                          const CsrMatrix& a_transpose,
                                          Index tile_rows);

}  // namespace dgc
