#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dgc {

namespace {

/// One Lanczos sweep on `a`, deflated against `locked` vectors: the Krylov
/// space is built orthogonal to every locked eigenvector, so repeated
/// sweeps with fresh random starts can resolve degenerate eigenspaces that
/// a single start vector cannot (each Krylov space contains exactly one
/// direction per eigenvalue).
struct SweepResult {
  std::vector<Scalar> ritz_values;
  std::vector<std::vector<Scalar>> ritz_vectors;
  std::vector<Scalar> residuals;
};

SweepResult LanczosSweep(const CsrMatrix& a,
                         const std::vector<std::vector<Scalar>>& locked,
                         int steps, Rng& rng) {
  const Index n = a.rows();
  const size_t un = static_cast<size_t>(n);
  std::vector<std::vector<Scalar>> basis;
  std::vector<Scalar> alpha, beta;

  auto deflate = [&](std::vector<Scalar>& w) {
    for (const auto& u : locked) {
      const Scalar c = Dot(w, u);
      if (c != 0.0) Axpy(-c, u, w);
    }
    for (const auto& u : basis) {
      const Scalar c = Dot(w, u);
      if (c != 0.0) Axpy(-c, u, w);
    }
  };

  std::vector<Scalar> v(un);
  for (Scalar& x : v) x = rng.UniformDouble() - 0.5;
  deflate(v);
  if (NormalizeL2(v) < 1e-12) return {};

  std::vector<Scalar> w(un);
  for (int j = 0; j < steps; ++j) {
    basis.push_back(v);
    a.Multiply(v, w);
    const Scalar aj = Dot(w, v);
    alpha.push_back(aj);
    Axpy(-aj, v, w);
    if (j > 0) Axpy(-beta.back(), basis[static_cast<size_t>(j) - 1], w);
    deflate(w);  // full reorthogonalization + deflation
    const Scalar bj = Norm2(w);
    if (bj < 1e-12 || j == steps - 1) break;
    beta.push_back(bj);
    for (size_t i = 0; i < un; ++i) v[i] = w[i] / bj;
  }

  const int m = static_cast<int>(alpha.size());
  SweepResult result;
  if (m == 0) return result;
  DenseMatrix t(m, m, 0.0);
  for (int i = 0; i < m; ++i) {
    t(i, i) = alpha[static_cast<size_t>(i)];
    if (i + 1 < m) {
      t(i, i + 1) = beta[static_cast<size_t>(i)];
      t(i + 1, i) = beta[static_cast<size_t>(i)];
    }
  }
  std::vector<Scalar> evals;
  DenseMatrix evecs;
  JacobiEigenSymmetric(t, &evals, &evecs);  // descending

  result.ritz_values = std::move(evals);
  result.ritz_vectors.resize(static_cast<size_t>(m));
  result.residuals.resize(static_cast<size_t>(m));
  std::vector<Scalar> resid(un);
  for (int j = 0; j < m; ++j) {
    std::vector<Scalar> x(un, 0.0);
    for (int s = 0; s < m; ++s) {
      Axpy(evecs(s, j), basis[static_cast<size_t>(s)], x);
    }
    NormalizeL2(x);
    a.Multiply(x, resid);
    Axpy(-result.ritz_values[static_cast<size_t>(j)], x, resid);
    result.residuals[static_cast<size_t>(j)] = Norm2(resid);
    result.ritz_vectors[static_cast<size_t>(j)] = std::move(x);
  }
  return result;
}

}  // namespace

Result<EigenResult> LanczosSymmetric(const CsrMatrix& a,
                                     const LanczosOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos requires a square matrix, got " +
                                   a.DebugString());
  }
  const Index n = a.rows();
  if (n == 0) {
    return Status::InvalidArgument("Lanczos on an empty matrix");
  }
  const int k = std::min<int>(options.num_eigenpairs, n);
  if (k <= 0) {
    return Status::InvalidArgument("num_eigenpairs must be positive");
  }
  // Closely spaced extremal eigenvalues (e.g. path graphs) need a generous
  // subspace; spectra with a gap converge long before the cap.
  int steps = options.max_subspace > 0 ? options.max_subspace
                                       : std::max(5 * k, 100);
  steps = std::min<int>(steps, n);

  Rng rng(options.seed);
  std::vector<std::vector<Scalar>> locked_vectors;
  std::vector<Scalar> locked_values;
  std::vector<Scalar> locked_residuals;

  // Deflated restarts: each sweep contributes its converged extremal Ritz
  // pairs; degenerate eigenspaces surface across sweeps.
  const int kMaxSweeps = 6;
  // Looser acceptance for later sweeps so we always return k pairs.
  for (int sweep = 0; sweep < kMaxSweeps &&
                      static_cast<int>(locked_vectors.size()) < k;
       ++sweep) {
    const int remaining = k - static_cast<int>(locked_vectors.size());
    SweepResult result = LanczosSweep(a, locked_vectors, steps, rng);
    const int m = static_cast<int>(result.ritz_values.size());
    if (m == 0) break;
    // Candidate order from the requested end of the spectrum.
    std::vector<int> order(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      order[static_cast<size_t>(i)] =
          options.which == SpectrumEnd::kLargest ? i : m - 1 - i;
    }
    const bool last_chance = sweep == kMaxSweeps - 1;
    const Scalar accept = last_chance ? 1e30 : 1e-6;
    int taken = 0;
    for (int idx : order) {
      if (taken >= remaining) break;
      if (result.residuals[static_cast<size_t>(idx)] > accept) continue;
      locked_values.push_back(result.ritz_values[static_cast<size_t>(idx)]);
      locked_residuals.push_back(
          result.residuals[static_cast<size_t>(idx)]);
      locked_vectors.push_back(
          std::move(result.ritz_vectors[static_cast<size_t>(idx)]));
      ++taken;
    }
    if (taken == 0 && !last_chance) {
      // Nothing converged this sweep; widen the subspace and retry.
      steps = std::min<Index>(n, steps * 2);
    }
  }
  if (locked_vectors.empty()) {
    return Status::NotConverged("Lanczos produced no eigenpairs");
  }

  // Verification rounds: a single Krylov space holds one direction per
  // distinct eigenvalue, so a degenerate partner of a locked eigenvalue may
  // have been skipped in favor of a genuinely smaller one. Sweep against
  // the locked set and swap in any strictly better eigenpair that surfaces.
  auto better = [&](Scalar candidate, Scalar incumbent) {
    return options.which == SpectrumEnd::kLargest
               ? candidate > incumbent + 1e-10
               : candidate < incumbent - 1e-10;
  };
  for (int round = 0; round < 5; ++round) {
    SweepResult result = LanczosSweep(a, locked_vectors, steps, rng);
    const int m = static_cast<int>(result.ritz_values.size());
    if (m == 0) break;
    int candidate = -1;
    for (int i = 0; i < m; ++i) {
      const int idx = options.which == SpectrumEnd::kLargest ? i : m - 1 - i;
      if (result.residuals[static_cast<size_t>(idx)] < 1e-6) {
        candidate = idx;
        break;
      }
    }
    if (candidate < 0) break;
    int worst = 0;
    for (int i = 1; i < static_cast<int>(locked_values.size()); ++i) {
      if (better(locked_values[static_cast<size_t>(worst)],
                 locked_values[static_cast<size_t>(i)])) {
        worst = i;
      }
    }
    if (!better(result.ritz_values[static_cast<size_t>(candidate)],
                locked_values[static_cast<size_t>(worst)])) {
      break;  // locked set is the true extremal set
    }
    locked_values[static_cast<size_t>(worst)] =
        result.ritz_values[static_cast<size_t>(candidate)];
    locked_residuals[static_cast<size_t>(worst)] =
        result.residuals[static_cast<size_t>(candidate)];
    locked_vectors[static_cast<size_t>(worst)] =
        std::move(result.ritz_vectors[static_cast<size_t>(candidate)]);
  }

  // Sort the locked set by eigenvalue in the requested order.
  const int found = static_cast<int>(locked_vectors.size());
  std::vector<int> order(static_cast<size_t>(found));
  for (int i = 0; i < found; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return options.which == SpectrumEnd::kLargest
               ? locked_values[static_cast<size_t>(x)] >
                     locked_values[static_cast<size_t>(y)]
               : locked_values[static_cast<size_t>(x)] <
                     locked_values[static_cast<size_t>(y)];
  });

  EigenResult eigen;
  eigen.eigenvalues.resize(static_cast<size_t>(found));
  eigen.eigenvectors = DenseMatrix(n, found);
  for (int out = 0; out < found; ++out) {
    const int src = order[static_cast<size_t>(out)];
    eigen.eigenvalues[static_cast<size_t>(out)] =
        locked_values[static_cast<size_t>(src)];
    eigen.max_residual = std::max(
        eigen.max_residual, locked_residuals[static_cast<size_t>(src)]);
    for (Index i = 0; i < n; ++i) {
      eigen.eigenvectors(i, out) =
          locked_vectors[static_cast<size_t>(src)][static_cast<size_t>(i)];
    }
  }
  return eigen;
}

}  // namespace dgc
