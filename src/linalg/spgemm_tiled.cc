#include "linalg/spgemm_tiled.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <system_error>
#include <utility>

#include "linalg/spgemm_impl.h"
#include "obs/span.h"
#include "util/logging.h"
#include "util/parallel_audit.h"
#include "util/thread_pool.h"

namespace dgc {

using spgemm_internal::AssembleRows;
using spgemm_internal::AssemblyBytes;
using spgemm_internal::Cancelled;
using spgemm_internal::ComputeUpperRow;
using spgemm_internal::SpGemmWorkspace;

namespace {

/// Cost model of the tiled driver's transient working set, in bytes per
/// *estimated* upper-triangle entry of a tile: pass-1 worker buffers
/// (12) + the assembled tile CSR (12) + the merged block before it is
/// spilled (12). docs/OUT_OF_CORE.md derives this from the ledger charges.
constexpr int64_t kTileBytesPerEntry = 36;
/// Fixed per-row bytes (tile row_nnz + row_ptr bookkeeping).
constexpr int64_t kTileBytesPerRow = 24;
/// Tile byte target when neither tile_rows nor max_memory_bytes is set.
constexpr int64_t kDefaultTileBudgetBytes = int64_t{64} << 20;
/// Floor for the derived per-tile target, so a budget spent almost
/// entirely on accumulators still makes forward progress.
constexpr int64_t kMinTileBudgetBytes = int64_t{1} << 20;

int64_t SaturatingAdd(int64_t a, int64_t b) {
  if (a > std::numeric_limits<int64_t>::max() - b) {
    return std::numeric_limits<int64_t>::max();
  }
  return a + b;
}

int64_t SaturatingMul(int64_t a, int64_t b) {
  if (a != 0 && b > std::numeric_limits<int64_t>::max() / a) {
    return std::numeric_limits<int64_t>::max();
  }
  return a * b;
}

/// Per-worker dense accumulators, the fixed footprint of every pass.
int64_t AccumulatorBytes(int threads, Index n) {
  return static_cast<int64_t>(threads) * n *
         static_cast<int64_t>(sizeof(Scalar) + sizeof(Index));
}

/// \brief A temp-file spool for finished upper-triangle blocks: append-only
/// during the tile loop, then one sequential read-back for the stitch.
/// The file is unlinked by the destructor on every path.
class Spool {
 public:
  Spool() = default;
  ~Spool() {
    if (stream_.is_open()) stream_.close();
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove(path_, ec);  // best effort
    }
  }
  Spool(const Spool&) = delete;
  Spool& operator=(const Spool&) = delete;

  Status Create(const std::string& spill_dir) {
    std::error_code ec;
    std::filesystem::path dir;
    if (spill_dir.empty()) {
      dir = std::filesystem::temp_directory_path(ec);
      if (ec) {
        return Status::IOError("spool: no system temp directory: " +
                               ec.message());
      }
    } else {
      dir = spill_dir;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        return Status::IOError("spool: cannot create spill dir " + spill_dir +
                               ": " + ec.message());
      }
    }
    static std::atomic<uint64_t> counter{0};
    const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
    path_ = (dir / ("dgc_spool_" + std::to_string(::getpid()) + "_" +
                    std::to_string(seq) + ".bin"))
                .string();
    stream_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                            std::ios::trunc);
    if (!stream_) {
      return Status::IOError("spool: cannot open " + path_ + " for writing");
    }
    return Status::OK();
  }

  Status Append(const void* data, size_t bytes) {
    stream_.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(bytes));
    if (!stream_) return Status::IOError("spool: write failed on " + path_);
    bytes_written_ += static_cast<int64_t>(bytes);
    return Status::OK();
  }

  Status Rewind() {
    stream_.flush();
    stream_.seekg(0);
    if (!stream_) return Status::IOError("spool: rewind failed on " + path_);
    return Status::OK();
  }

  Status Read(void* data, size_t bytes) {
    stream_.read(static_cast<char*>(data),
                 static_cast<std::streamsize>(bytes));
    if (!stream_) {
      return Status::IOError("spool: truncated read from " + path_);
    }
    return Status::OK();
  }

  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::fstream stream_;
  int64_t bytes_written_ = 0;
};

/// One row block [lo, hi) of the upper-triangle product over (a, at),
/// through the exact per-row kernel of SpGemmAAtSymmetric. The returned
/// CSR has hi - lo rows (local) and n columns (global indices).
Result<CsrMatrix> ComputeUpperTile(const CsrMatrix& a, const CsrMatrix& at,
                                   std::span<const Scalar> row_scale,
                                   std::span<const Scalar> col_scale,
                                   Index lo, Index hi,
                                   const SpGemmOptions& options, int threads,
                                   std::vector<SpGemmWorkspace>& workspaces) {
  const Index n = a.rows();
  for (SpGemmWorkspace& w : workspaces) {
    w.ClearBufferedRows();
    // The sibling product of this tile reuses the same global row ids, so
    // stale stamps from the previous pass must be invalidated (see
    // SpGemmWorkspace::ResetMarkers).
    w.ResetMarkers();
  }
  std::vector<Offset> row_nnz(static_cast<size_t>(hi - lo), 0);
  ParallelForWorkers(
      lo, hi, threads, /*grain=*/0, [&](int worker, int64_t wlo, int64_t whi) {
        if (Cancelled(options.cancel)) return;  // skip the chunk, not a row
        SpGemmWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(n);
        audit::AuditSpan audit_nnz(row_nnz.data() + (wlo - lo),
                                   static_cast<size_t>(whi - wlo),
                                   "tiled.row_nnz");
        for (int64_t r = wlo; r < whi; ++r) {
          const size_t before = w.cols.size();
          ComputeUpperRow(a, at, row_scale, col_scale, static_cast<Index>(r),
                          options, w);
          row_nnz[static_cast<size_t>(r - lo)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(r));
        }
      });
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge assembly_charge(options.cancel,
                               AssemblyBytes(hi - lo, workspaces));
  if (assembly_charge.exceeded()) return options.cancel->status();
  return AssembleRows(hi - lo, n, threads, workspaces, row_nnz,
                      /*row_base=*/lo, "TiledSymmetricProductSum(tile)");
}

Status CheckTransposePair(const char* who, const CsrMatrix& a,
                          const CsrMatrix& at) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": matrix must be square, got " +
                                   a.DebugString());
  }
  if (at.rows() != a.cols() || at.cols() != a.rows() || at.nnz() != a.nnz()) {
    return Status::InvalidArgument(std::string(who) + ": a_transpose " +
                                   at.DebugString() +
                                   " is not the transpose of " +
                                   a.DebugString());
  }
  return Status::OK();
}

Status CheckScale(const char* who, const char* name,
                  std::span<const Scalar> scale, Index n) {
  if (!scale.empty() && static_cast<Index>(scale.size()) != n) {
    return Status::InvalidArgument(std::string(who) + ": " + name +
                                   " size " + std::to_string(scale.size()) +
                                   " != dimension " + std::to_string(n));
  }
  return Status::OK();
}

}  // namespace

std::vector<int64_t> EstimateUpperRowEntries(const CsrMatrix& a,
                                             const CsrMatrix& at) {
  const Index rows = a.rows();
  std::vector<int64_t> est(static_cast<size_t>(rows), 0);
  for (Index r = 0; r < rows; ++r) {
    int64_t flops = 0;
    for (Index k : a.RowCols(r)) {
      flops = SaturatingAdd(flops, at.RowNnz(k));
    }
    est[static_cast<size_t>(r)] =
        std::min<int64_t>(flops, static_cast<int64_t>(rows) - r);
  }
  return est;
}

TilePlan PlanRowTiles(const CsrMatrix& a, const CsrMatrix& at,
                      const TiledSymmetricSumOptions& options) {
  const Index n = a.rows();
  TilePlan plan;
  plan.cuts.push_back(0);
  if (n == 0) return plan;
  if (options.tile_rows > 0) {
    for (Index lo = 0; lo < n; lo += options.tile_rows) {
      plan.cuts.push_back(std::min<Index>(n, lo + options.tile_rows));
    }
    return plan;
  }
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(n, 1)));
  const int64_t budget = options.max_memory_bytes > 0
                             ? options.max_memory_bytes
                             : kDefaultTileBudgetBytes;
  plan.tile_budget_bytes = std::max(
      budget - AccumulatorBytes(threads, n), kMinTileBudgetBytes);
  const std::vector<int64_t> est_b = EstimateUpperRowEntries(a, at);
  const std::vector<int64_t> est_c = EstimateUpperRowEntries(at, a);
  int64_t current = 0;
  for (Index r = 0; r < n; ++r) {
    const int64_t entries =
        SaturatingAdd(est_b[static_cast<size_t>(r)],
                      est_c[static_cast<size_t>(r)]);
    const int64_t cost = SaturatingAdd(
        SaturatingMul(entries, kTileBytesPerEntry), kTileBytesPerRow);
    if (current > 0 && current + cost > plan.tile_budget_bytes) {
      plan.cuts.push_back(r);
      current = 0;
    }
    current = SaturatingAdd(current, cost);
  }
  plan.cuts.push_back(n);
  return plan;
}

int64_t EstimateInMemorySymmetricSumBytes(const CsrMatrix& a,
                                          const CsrMatrix& at,
                                          int num_threads) {
  const Index n = a.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(num_threads), std::max<Index>(n, 1)));
  const std::vector<int64_t> est_b = EstimateUpperRowEntries(a, at);
  const std::vector<int64_t> est_c = EstimateUpperRowEntries(at, a);
  int64_t total_b = 0;
  int64_t total_c = 0;
  for (Index r = 0; r < n; ++r) {
    total_b = SaturatingAdd(total_b, est_b[static_cast<size_t>(r)]);
    total_c = SaturatingAdd(total_c, est_c[static_cast<size_t>(r)]);
  }
  // The in-memory ledger peaks at the two-pass assembly of the larger
  // product: worker buffers + final CSR, 2 x 12 bytes per entry
  // (spgemm_internal::AssemblyBytes), on top of the accumulators.
  const int64_t assembly = SaturatingMul(
      std::max(total_b, total_c),
      2 * static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)));
  return SaturatingAdd(AccumulatorBytes(threads, n), assembly);
}

Result<CsrMatrix> TiledSymmetricProductSum(
    const CsrMatrix& a, const CsrMatrix& at,
    std::span<const Scalar> b_row_scale, std::span<const Scalar> b_col_scale,
    std::span<const Scalar> c_row_scale, std::span<const Scalar> c_col_scale,
    const TiledSymmetricSumOptions& options) {
  constexpr const char* kWho = "TiledSymmetricProductSum";
  Status s = CheckTransposePair(kWho, a, at);
  if (!s.ok()) return s;
  const Index n = a.rows();
  s = CheckScale(kWho, "b_row_scale", b_row_scale, n);
  if (!s.ok()) return s;
  s = CheckScale(kWho, "b_col_scale", b_col_scale, n);
  if (!s.ok()) return s;
  s = CheckScale(kWho, "c_row_scale", c_row_scale, n);
  if (!s.ok()) return s;
  s = CheckScale(kWho, "c_col_scale", c_col_scale, n);
  if (!s.ok()) return s;
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(n, 1)));
  CancelToken* cancel = options.cancel;

  StageSpan span(options.metrics, "tiled_spgemm");
  const TilePlan plan = PlanRowTiles(a, at, options);
  const size_t tiles = plan.cuts.size() - 1;
  if (span.live()) {
    span.Metric("rows", n);
    span.Metric("product_threshold", options.product_threshold);
    span.Metric("sum_threshold", options.sum_threshold);
    // Tile geometry depends on the resolved thread count when derived from
    // a budget (accumulator bytes scale with workers), so it is perf-class.
    span.PerfMetric("tiles", static_cast<int64_t>(tiles));
    span.PerfMetric("tile_budget_bytes", plan.tile_budget_bytes);
    span.PerfMetric("workers", threads);
  }

  if (Cancelled(cancel)) return cancel->status();
  MemoryCharge accum_charge(cancel, AccumulatorBytes(threads, n));
  if (accum_charge.exceeded()) return cancel->status();

  Spool spool;
  s = spool.Create(options.spill_dir);
  if (!s.ok()) return s;

  SpGemmOptions product_options;
  product_options.threshold = options.product_threshold;
  product_options.drop_diagonal = options.product_drop_diagonal;
  product_options.num_threads = options.num_threads;
  product_options.cancel = cancel;

  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(n), 0);
  std::vector<int64_t> tile_entries(tiles, 0);
  int64_t merge_dropped = 0;

  // Tile loop: both products for the block, per-row two-pointer merge +
  // prune (byte-for-byte the SpGemmSymmetricSum pass-1 loop), spill.
  std::vector<Index> merged_cols;
  std::vector<Scalar> merged_vals;
  for (size_t t = 0; t < tiles; ++t) {
    const Index lo = plan.cuts[t];
    const Index hi = plan.cuts[t + 1];
    if (Cancelled(cancel)) return cancel->status();
    DGC_ASSIGN_OR_RETURN(
        CsrMatrix b_tile,
        ComputeUpperTile(a, at, b_row_scale, b_col_scale, lo, hi,
                         product_options, threads, workspaces));
    // Keep the finished block on the ledger while the sibling product and
    // the merge still run.
    MemoryCharge b_live(cancel,
                        b_tile.nnz() * static_cast<int64_t>(sizeof(Index) +
                                                            sizeof(Scalar)));
    if (b_live.exceeded()) return cancel->status();
    DGC_ASSIGN_OR_RETURN(
        CsrMatrix c_tile,
        ComputeUpperTile(at, a, c_row_scale, c_col_scale, lo, hi,
                         product_options, threads, workspaces));
    MemoryCharge c_live(cancel,
                        c_tile.nnz() * static_cast<int64_t>(sizeof(Index) +
                                                            sizeof(Scalar)));
    if (c_live.exceeded()) return cancel->status();

    merged_cols.clear();
    merged_vals.clear();
    for (Index r = lo; r < hi; ++r) {
      const size_t before = merged_cols.size();
      auto bc = b_tile.RowCols(r - lo);
      auto bv = b_tile.RowValues(r - lo);
      auto cc = c_tile.RowCols(r - lo);
      auto cv = c_tile.RowValues(r - lo);
      size_t i = 0, j = 0;
      while (i < bc.size() || j < cc.size()) {
        Index col;
        Scalar v;
        if (j >= cc.size() || (i < bc.size() && bc[i] < cc[j])) {
          col = bc[i];
          v = bv[i];
          ++i;
        } else if (i >= bc.size() || cc[j] < bc[i]) {
          col = cc[j];
          v = cv[j];
          ++j;
        } else {
          col = bc[i];
          v = bv[i] + cv[j];
          ++i;
          ++j;
        }
        if (options.sum_threshold > 0.0 &&
            std::abs(v) < options.sum_threshold) {
          ++merge_dropped;
          continue;
        }
        if (options.sum_drop_diagonal && col == r) continue;
        merged_cols.push_back(col);
        merged_vals.push_back(v);
      }
      row_nnz[static_cast<size_t>(r)] =
          static_cast<Offset>(merged_cols.size() - before);
    }
    MemoryCharge merge_live(
        cancel, static_cast<int64_t>(merged_cols.size()) *
                    static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)));
    if (merge_live.exceeded()) return cancel->status();
    tile_entries[t] = static_cast<int64_t>(merged_cols.size());
    s = spool.Append(merged_cols.data(),
                     merged_cols.size() * sizeof(Index));
    if (!s.ok()) return s;
    s = spool.Append(merged_vals.data(),
                     merged_vals.size() * sizeof(Scalar));
    if (!s.ok()) return s;
  }
  span.Metric("spill_bytes", spool.bytes_written());

  // Stitch: prefix-sum the merged row counts, stream the spool back into
  // the final triangle, mirror. Sequential by design — one pass, in row
  // order, no seeks.
  if (Cancelled(cancel)) return cancel->status();
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (Index r = 0; r < n; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] + row_nnz[static_cast<size_t>(r)];
  }
  const int64_t total = row_ptr.back();
  MemoryCharge merged_charge(
      cancel,
      total * static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)) +
          (static_cast<int64_t>(n) + 1) *
              static_cast<int64_t>(sizeof(Offset)));
  if (merged_charge.exceeded()) return cancel->status();
  std::vector<Index> col_idx(static_cast<size_t>(total));
  std::vector<Scalar> values(static_cast<size_t>(total));
  s = spool.Rewind();
  if (!s.ok()) return s;
  int64_t offset = 0;
  for (size_t t = 0; t < tiles; ++t) {
    const int64_t cnt = tile_entries[t];
    s = spool.Read(col_idx.data() + offset,
                   static_cast<size_t>(cnt) * sizeof(Index));
    if (!s.ok()) return s;
    s = spool.Read(values.data() + offset,
                   static_cast<size_t>(cnt) * sizeof(Scalar));
    if (!s.ok()) return s;
    offset += cnt;
  }
  CsrMatrix merged = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  merged.ValidateStructure("TiledSymmetricProductSum(merge)");
  if (span.live()) {
    int64_t product_dropped = 0;
    for (const SpGemmWorkspace& w : workspaces) product_dropped += w.dropped;
    span.Metric("pruned_entries", product_dropped + merge_dropped);
  }
  if (Cancelled(cancel)) return cancel->status();
  // The mirrored full matrix roughly doubles the triangle's footprint.
  MemoryCharge mirror_charge(
      cancel, 2 * merged.nnz() *
                  static_cast<int64_t>(sizeof(Index) + sizeof(Scalar)));
  if (mirror_charge.exceeded()) return cancel->status();
  Result<CsrMatrix> full = MirrorUpperTriangle(merged, options.num_threads);
  if (full.ok()) span.Metric("output_nnz", full->nnz());
  return full;
}

Result<CsrMatrix> SpGemmAAtSymmetricTiled(const CsrMatrix& a,
                                          std::span<const Scalar> row_scale,
                                          std::span<const Scalar> col_scale,
                                          const SpGemmOptions& options,
                                          const CsrMatrix& a_transpose,
                                          Index tile_rows) {
  constexpr const char* kWho = "SpGemmAAtSymmetricTiled";
  Status s = CheckTransposePair(kWho, a, a_transpose);
  if (!s.ok()) return s;
  const Index n = a.rows();
  s = CheckScale(kWho, "row_scale", row_scale, n);
  if (!s.ok()) return s;
  s = CheckScale(kWho, "col_scale", col_scale, n);
  if (!s.ok()) return s;
  if (tile_rows <= 0) {
    return Status::InvalidArgument(std::string(kWho) +
                                   ": tile_rows must be positive, got " +
                                   std::to_string(tile_rows));
  }
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(n, 1)));
  if (Cancelled(options.cancel)) return options.cancel->status();
  MemoryCharge accum_charge(options.cancel, AccumulatorBytes(threads, n));
  if (accum_charge.exceeded()) return options.cancel->status();

  std::vector<SpGemmWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  for (Index lo = 0; lo < n; lo += tile_rows) {
    const Index hi = std::min<Index>(n, lo + tile_rows);
    if (Cancelled(options.cancel)) return options.cancel->status();
    DGC_ASSIGN_OR_RETURN(CsrMatrix tile,
                         ComputeUpperTile(a, a_transpose, row_scale,
                                          col_scale, lo, hi, options, threads,
                                          workspaces));
    for (Index r = lo; r < hi; ++r) {
      row_ptr[static_cast<size_t>(r) + 1] =
          row_ptr[static_cast<size_t>(r)] + tile.RowNnz(r - lo);
    }
    col_idx.insert(col_idx.end(), tile.col_idx().begin(),
                   tile.col_idx().end());
    values.insert(values.end(), tile.values().begin(), tile.values().end());
  }
  CsrMatrix upper = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  upper.ValidateStructure(kWho);
  return upper;
}

}  // namespace dgc
