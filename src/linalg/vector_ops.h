// Small dense-vector helpers shared by the iterative solvers.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "linalg/types.h"

namespace dgc {

/// <x, y>.
Scalar Dot(std::span<const Scalar> x, std::span<const Scalar> y);

/// ||x||_2.
Scalar Norm2(std::span<const Scalar> x);

/// sum_i |x_i|.
Scalar Norm1(std::span<const Scalar> x);

/// y += alpha * x.
void Axpy(Scalar alpha, std::span<const Scalar> x, std::span<Scalar> y);

/// x *= alpha.
void Scale(Scalar alpha, std::span<Scalar> x);

/// Normalizes x to unit L2 norm; returns the original norm (0 if x == 0, in
/// which case x is left unchanged).
Scalar NormalizeL2(std::span<Scalar> x);

/// Normalizes x to unit L1 norm (probability vector); returns original sum.
Scalar NormalizeL1(std::span<Scalar> x);

/// sum_i |x_i - y_i|.
Scalar L1Distance(std::span<const Scalar> x, std::span<const Scalar> y);

/// Elementwise power with the convention 0^(-p) == 0, used for the
/// degree-discount scaling D^{-alpha} where zero-degree nodes must
/// contribute nothing rather than infinity.
std::vector<Scalar> InversePower(std::span<const Scalar> x, Scalar p);

}  // namespace dgc
