#include "linalg/vector_ops.h"

#include "util/logging.h"

namespace dgc {

Scalar Dot(std::span<const Scalar> x, std::span<const Scalar> y) {
  DGC_CHECK_EQ(x.size(), y.size());
  Scalar acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

Scalar Norm2(std::span<const Scalar> x) { return std::sqrt(Dot(x, x)); }

Scalar Norm1(std::span<const Scalar> x) {
  Scalar acc = 0.0;
  for (Scalar v : x) acc += std::abs(v);
  return acc;
}

void Axpy(Scalar alpha, std::span<const Scalar> x, std::span<Scalar> y) {
  DGC_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(Scalar alpha, std::span<Scalar> x) {
  for (Scalar& v : x) v *= alpha;
}

Scalar NormalizeL2(std::span<Scalar> x) {
  Scalar n = Norm2(x);
  if (n > 0.0) Scale(1.0 / n, x);
  return n;
}

Scalar NormalizeL1(std::span<Scalar> x) {
  Scalar n = 0.0;
  for (Scalar v : x) n += v;
  if (n != 0.0) Scale(1.0 / n, x);
  return n;
}

Scalar L1Distance(std::span<const Scalar> x, std::span<const Scalar> y) {
  DGC_CHECK_EQ(x.size(), y.size());
  Scalar acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += std::abs(x[i] - y[i]);
  return acc;
}

std::vector<Scalar> InversePower(std::span<const Scalar> x, Scalar p) {
  std::vector<Scalar> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] > 0.0 ? std::pow(x[i], -p) : 0.0;
  }
  return out;
}

}  // namespace dgc
