// Symmetric Lanczos eigensolver: extremal eigenpairs of a sparse symmetric
// matrix, used by the spectral clustering baselines (BestWCut, directed
// Laplacian). Full reorthogonalization keeps it robust at the modest
// subspace sizes we need (k <= ~100).
#pragma once

#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "util/result.h"

namespace dgc {

/// Which end of the spectrum to return.
enum class SpectrumEnd {
  kLargest,   ///< eigenvalues of largest algebraic value
  kSmallest,  ///< eigenvalues of smallest algebraic value
};

struct LanczosOptions {
  /// Number of eigenpairs requested.
  int num_eigenpairs = 8;
  SpectrumEnd which = SpectrumEnd::kLargest;
  /// Krylov subspace cap; 0 picks min(n, max(4k, k + 20)).
  int max_subspace = 0;
  /// Residual tolerance ||A v - lambda v|| for convergence accounting.
  Scalar tolerance = 1e-8;
  /// RNG seed for the start vector.
  uint64_t seed = 42;
};

struct EigenResult {
  /// Converged (or best-effort) eigenvalues, ordered per `which`.
  std::vector<Scalar> eigenvalues;
  /// n x k matrix; column j is the eigenvector for eigenvalues[j].
  DenseMatrix eigenvectors;
  /// Max residual norm across returned pairs.
  Scalar max_residual = 0.0;
};

/// \brief Computes `options.num_eigenpairs` extremal eigenpairs of the
/// symmetric matrix `a`.
///
/// Returns InvalidArgument for non-square input and NotConverged only if the
/// Krylov space exhausted without producing the requested count at all;
/// looser residuals are reported via max_residual rather than failing, since
/// spectral clustering tolerates approximate eigenvectors.
Result<EigenResult> LanczosSymmetric(const CsrMatrix& a,
                                     const LanczosOptions& options = {});

}  // namespace dgc
