// Sparse general matrix-matrix multiplication (SpGEMM) with optional
// on-the-fly magnitude pruning — the workhorse of the Bibliometric and
// Degree-discounted symmetrizations (Sections 3.3-3.5 of the paper).
#pragma once

#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// Options controlling SpGEMM output filtering.
struct SpGemmOptions {
  /// Entries with |value| < threshold are dropped from the product as each
  /// output row is finalized (the paper's "prune threshold", Section 3.5).
  Scalar threshold = 0.0;

  /// Drop C(i, i). Symmetrized graphs feed into clustering algorithms that
  /// expect no self-loops.
  bool drop_diagonal = false;

  /// Threads for row-parallel execution. 1 (the default) reproduces the
  /// paper's single-threaded setup; 0 uses one thread per hardware core.
  /// The product is bit-identical for every setting.
  int num_threads = 1;
};

/// \brief C = A * B using Gustavson's algorithm with a dense accumulator.
///
/// Per output row: scatter contributions into a cols(B)-sized accumulator,
/// gather touched columns, sort, filter by `options`. Complexity
/// O(sum_i sum_{k in row i of A} nnz(B_k)) — the paper's O(sum d_i^2) bound
/// for similarity products. Two-pass row-parallel execution: rows are
/// computed into per-worker buffers (dynamic chunking over the persistent
/// pool), row pointers prefix-summed, then rows copied to their final
/// offsets in parallel.
Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const SpGemmOptions& options = {});

/// \brief C = A * Aᵀ (bibliographic-coupling pattern, Kessler 1963).
/// Materializes Aᵀ once, then calls SpGemm.
Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a,
                            const SpGemmOptions& options = {});

/// \brief C = Aᵀ * A (co-citation pattern, Small 1973).
Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a,
                            const SpGemmOptions& options = {});

/// \brief Number of multiply-adds SpGemm(a, b) would perform (the FLOP
/// count); useful for picking thresholds and for complexity experiments.
Offset SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace dgc
