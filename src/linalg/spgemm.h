// Sparse general matrix-matrix multiplication (SpGEMM) with optional
// on-the-fly magnitude pruning — the workhorse of the Bibliometric and
// Degree-discounted symmetrizations (Sections 3.3-3.5 of the paper).
//
// Two families:
//  * the general Gustavson kernel (SpGemm / SpGemmAAt / SpGemmAtA), which
//    computes every output entry, and
//  * the symmetry-exploiting kernels (SpGemmAAtSymmetric,
//    SpGemmSymmetricSum, MirrorUpperTriangle), which compute only the upper
//    triangle of the provably symmetric similarity products and mirror it —
//    half the flops and half the intermediate memory of the general path.
#pragma once

#include <span>

#include "linalg/csr_matrix.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// Options controlling SpGEMM output filtering.
struct SpGemmOptions {
  /// Entries with |value| < threshold are dropped from the product as each
  /// output row is finalized (the paper's "prune threshold", Section 3.5).
  Scalar threshold = 0.0;

  /// Drop C(i, i). Symmetrized graphs feed into clustering algorithms that
  /// expect no self-loops.
  bool drop_diagonal = false;

  /// Threads for row-parallel execution. 1 (the default) reproduces the
  /// paper's single-threaded setup; 0 uses one thread per hardware core.
  /// The product is bit-identical for every setting.
  int num_threads = 1;

  /// Optional observability sink (obs/metrics.h). When non-null each kernel
  /// records a stage span (output nnz, pruned-entry counts, flops estimate);
  /// when null — the default — no instrumentation runs at all.
  MetricsRegistry* metrics = nullptr;

  /// Optional cooperative cancellation (util/budget.h). When non-null the
  /// row loops poll the token at chunk granularity and the kernel charges
  /// its dominant working sets against the token's memory ledger; a tripped
  /// token aborts the product with the token's status (kDeadlineExceeded /
  /// kResourceExhausted). Null — the default — adds no per-chunk work.
  /// Cancellation is all-or-nothing: a completed product is bit-identical
  /// whether or not a token was attached.
  CancelToken* cancel = nullptr;
};

/// \brief C = A * B using Gustavson's algorithm with a dense accumulator.
///
/// Per output row: scatter contributions into a cols(B)-sized accumulator,
/// gather touched columns, sort, filter by `options`. Complexity
/// O(sum_i sum_{k in row i of A} nnz(B_k)) — the paper's O(sum d_i^2) bound
/// for similarity products. Two-pass row-parallel execution: rows are
/// computed into per-worker buffers (dynamic chunking over the persistent
/// pool), row pointers prefix-summed, then rows copied to their final
/// offsets in parallel.
Result<CsrMatrix> SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                         const SpGemmOptions& options = {});

/// \brief C = A * Aᵀ (bibliographic-coupling pattern, Kessler 1963).
/// Materializes Aᵀ once, then calls SpGemm.
Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a,
                            const SpGemmOptions& options = {});

/// As above with a precomputed transpose (`a_transpose` must equal
/// a.Transpose()); callers that already hold Aᵀ avoid re-materializing it.
Result<CsrMatrix> SpGemmAAt(const CsrMatrix& a, const CsrMatrix& a_transpose,
                            const SpGemmOptions& options = {});

/// \brief C = Aᵀ * A (co-citation pattern, Small 1973).
Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a,
                            const SpGemmOptions& options = {});

/// As above with a precomputed transpose of `a`.
Result<CsrMatrix> SpGemmAtA(const CsrMatrix& a, const CsrMatrix& a_transpose,
                            const SpGemmOptions& options = {});

/// \brief Upper triangle of the scaled symmetric product
/// U = D_r A D_c² Aᵀ D_r, i.e. U(i,j) = Σ_k m(i,k)·m(j,k) for j ≥ i with
///
///     m(i,k) = (a(i,k) * row_scale[i]) * col_scale[k]
///
/// evaluated on the fly against the *original* CSR — no scaled copy of A is
/// materialized. An empty span skips that scaling entirely (factor 1). The
/// per-term multiplication order above is exactly the order produced by
/// ScaleRows-then-ScaleCols on a copy, so the result is bit-identical to
/// SpGemmAAt on the scaled copy, row by row, at any thread count.
///
/// The product is symmetric by construction, so only entries with j ≥ i are
/// computed and stored (roughly half the flops and memory of SpGemmAAt);
/// `options.threshold` / `options.drop_diagonal` apply to the emitted
/// triangle. Use MirrorUpperTriangle for the full matrix, or
/// SpGemmSymmetricSum to combine two triangles.
///
/// `a_transpose` is the inverted index used for candidate generation; pass
/// the precomputed Aᵀ to share it across products (nullptr = build
/// internally). For the AtA pattern (C = D_r Aᵀ D_c² A D_r), call with the
/// roles swapped: SpGemmAAtSymmetric(at, ..., &a).
Result<CsrMatrix> SpGemmAAtSymmetric(const CsrMatrix& a,
                                     std::span<const Scalar> row_scale,
                                     std::span<const Scalar> col_scale,
                                     const SpGemmOptions& options = {},
                                     const CsrMatrix* a_transpose = nullptr);

/// \brief Incremental row refresh of an SpGemmAAtSymmetric upper triangle:
/// recomputes only the rows listed in `rows` against the UPDATED inputs
/// (a / a_transpose / scales) and splices them into `cached_upper`, the
/// triangle computed for the previous inputs.
///
/// `rows` must be sorted, unique, and within [0, a.rows()). Correctness
/// contract (the basis of the dynamic-graph path, docs/DYNAMIC.md): if
/// every row of the product whose entries differ between the old and new
/// inputs is listed in `rows`, the result is byte-identical to running
/// SpGemmAAtSymmetric from scratch on the new inputs — each row kernel is a
/// pure function of (inputs, row, options), so unlisted rows keep their
/// cached bytes and listed rows are recomputed by the exact same kernel.
/// Unlike SpGemmAAtSymmetric, `a_transpose` is required here: the caller
/// maintains both orientations incrementally anyway, and rebuilding it for
/// a handful of rows would defeat the point.
Result<CsrMatrix> SpGemmAAtSymmetricUpdateRows(
    const CsrMatrix& a, std::span<const Scalar> row_scale,
    std::span<const Scalar> col_scale, const SpGemmOptions& options,
    const CsrMatrix& a_transpose, std::span<const Index> rows,
    const CsrMatrix& cached_upper);

/// \brief Fused U = mirror(prune(B + C)) for two upper-triangle matrices:
/// merges the triangles entrywise, applies `options.threshold` (entries with
/// |value| < threshold dropped; threshold <= 0 keeps everything) and
/// `options.drop_diagonal` in the same pass, then mirrors the surviving
/// triangle into a full symmetric CSR. This replaces the reference path's
/// separate CsrMatrix::Add and CsrMatrix::Pruned materializations.
Result<CsrMatrix> SpGemmSymmetricSum(const CsrMatrix& upper_b,
                                     const CsrMatrix& upper_c,
                                     const SpGemmOptions& options = {});

/// \brief Expands an upper-triangle matrix (entries with col ≥ row only)
/// into the full symmetric CSR in a parallel two-pass assembly: per-row
/// counts of the mirrored strict-lower part are computed over static row
/// blocks with exact per-block placement (the CsrMatrix::Transpose scheme),
/// so the result is bit-identical for every thread count. InvalidArgument if
/// `upper` is not square or has an entry below the diagonal.
Result<CsrMatrix> MirrorUpperTriangle(const CsrMatrix& upper,
                                      int num_threads = 1);

/// \brief Number of multiply-adds SpGemm(a, b) would perform (the FLOP
/// count); useful for picking thresholds and for complexity experiments.
Offset SpGemmFlops(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace dgc
